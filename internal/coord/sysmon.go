package coord

import (
	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// StreamPlacement is the catalog name of the coordinator's telemetry
// stream: one row per placed assignment per sampling interval, carrying
// the placement decision and the host's modeled budget utilization, so
// "where does everything run and how full is each box" is answerable
// with an ordinary GSQL query — the same self-monitoring story as
// SYSMON.NodeStats.
const StreamPlacement = "SYSMON.Placement"

// DefaultPlacementIntervalUsec is the sampling period when Config leaves
// it zero: one second of virtual time.
const DefaultPlacementIntervalUsec = 1_000_000

// PlacementSchema returns the SYSMON.Placement tuple layout.
func PlacementSchema() *schema.Schema {
	return &schema.Schema{
		Name: StreamPlacement,
		Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "ts", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "host", Type: schema.TString},
			{Name: "node", Type: schema.TString},
			{Name: "query", Type: schema.TString},
			{Name: "level", Type: schema.TString},
			{Name: "kind", Type: schema.TString},
			{Name: "part", Type: schema.TUint},
			{Name: "of", Type: schema.TUint},
			// costUs is the operator's modeled cost (µs CPU per second of
			// traffic); hostBudget/hostCost/hostUtil repeat the owning
			// host's totals on every row so per-host reasoning needs no
			// join.
			{Name: "costUs", Type: schema.TFloat},
			{Name: "hostBudget", Type: schema.TFloat},
			{Name: "hostCost", Type: schema.TFloat},
			{Name: "hostUtil", Type: schema.TFloat},
			{Name: "hostOver", Type: schema.TBool},
		},
	}
}

// PlacementSampler publishes the (static) placement manifest as a
// periodic stream — an rts.SourceNode, attached on the sink host via
// rts.Manager.AddSourceNode before the script compiles there.
type PlacementSampler struct {
	m        *Manifest
	interval uint64
	out      *schema.Schema
	last     uint64
	primed   bool
}

// NewPlacementSampler builds a sampler publishing m's assignments every
// interval microseconds of virtual time (0 = default 1s).
func NewPlacementSampler(m *Manifest, interval uint64) *PlacementSampler {
	if interval == 0 {
		interval = DefaultPlacementIntervalUsec
	}
	return &PlacementSampler{m: m, interval: interval, out: PlacementSchema()}
}

// OutSchema implements rts.SourceNode.
func (s *PlacementSampler) OutSchema() *schema.Schema { return s.out }

// Tick implements rts.SourceNode.
func (s *PlacementSampler) Tick(nowUsec uint64, emit exec.Emit) {
	if s.primed && nowUsec < s.last+s.interval {
		return
	}
	s.sample(nowUsec, emit)
}

// Heartbeat implements rts.SourceNode.
func (s *PlacementSampler) Heartbeat(nowUsec uint64, emit exec.Emit) {
	if nowUsec == 0 {
		return
	}
	bounds := make(schema.Tuple, len(s.out.Cols))
	bounds[0] = schema.MakeUint(nowUsec)
	emit(exec.HeartbeatMsg(bounds))
}

// Flush implements rts.SourceNode.
func (s *PlacementSampler) Flush(nowUsec uint64, emit exec.Emit) {
	if nowUsec < s.last {
		nowUsec = s.last
	}
	s.sample(nowUsec, emit)
}

func (s *PlacementSampler) sample(nowUsec uint64, emit exec.Emit) {
	s.last = nowUsec
	s.primed = true
	for i := range s.m.Hosts {
		h := &s.m.Hosts[i]
		for _, a := range h.Assignments {
			emit(exec.TupleMsg(schema.Tuple{
				schema.MakeUint(nowUsec),
				schema.MakeStr(h.Name),
				schema.MakeStr(a.Node),
				schema.MakeStr(a.Query),
				schema.MakeStr(a.Level),
				schema.MakeStr(a.Kind),
				schema.MakeUint(uint64(a.Partition)),
				schema.MakeUint(uint64(a.Of)),
				schema.MakeFloat(a.CostUs),
				schema.MakeFloat(h.Budget),
				schema.MakeFloat(h.CostUs),
				schema.MakeFloat(h.Util),
				schema.MakeBool(h.Over),
			}))
		}
	}
	bounds := make(schema.Tuple, len(s.out.Cols))
	bounds[0] = schema.MakeUint(nowUsec)
	emit(exec.HeartbeatMsg(bounds))
}
