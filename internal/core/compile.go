package core

import (
	"fmt"
	"strings"

	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// Compile turns one GSQL query into its node tree: zero or more LFTAs plus
// at most one HFTA (paper §3). The output schemas of all nodes — including
// the mangled-name LFTAs — are registered in the catalog so other queries
// (and applications) can subscribe to them.
func Compile(cat *schema.Catalog, q *gsql.Query, opts *Options) (*CompiledQuery, error) {
	name := q.Name()
	if name == "" {
		return nil, &Error{Err: fmt.Errorf("query has no name; add DEFINE { query_name <name>; }")}
	}
	if _, exists := cat.Lookup(name); exists {
		return nil, &Error{Query: name, Err: fmt.Errorf("a stream or protocol named %q already exists", name)}
	}
	a := &analyzer{cat: cat, reg: opts.registry(), opts: opts, name: name, params: q.Params()}
	srcs, err := a.resolveSources(q)
	if err != nil {
		return nil, &Error{Query: name, Err: err}
	}

	var nodes []*Node
	switch {
	case q.Kind == gsql.KindMerge:
		nodes, err = a.compileMerge(name, srcs, q)
	case len(srcs) == 2:
		nodes, err = a.compileJoin(name, srcs, q)
	case len(srcs) == 1:
		nodes, err = a.compileSingle(name, srcs[0], q)
	default:
		err = fmt.Errorf("joins are restricted to two streams (paper §2.2); got %d sources", len(srcs))
	}
	if err != nil {
		return nil, &Error{Query: name, Err: err}
	}

	for _, n := range nodes {
		if err := cat.Register(n.Out); err != nil {
			return nil, &Error{Query: name, Err: err}
		}
	}
	return &CompiledQuery{Name: name, Nodes: nodes}, nil
}

// CompileScript compiles a sequence of queries (and registers any protocol
// definitions) in order, so later queries can read earlier outputs.
func CompileScript(cat *schema.Catalog, script *gsql.Script, opts *Options) ([]*CompiledQuery, error) {
	for _, p := range script.Protocols {
		s, err := ProtocolSchema(p)
		if err != nil {
			return nil, err
		}
		if err := cat.Register(s); err != nil {
			return nil, &Error{Err: err}
		}
	}
	var out []*CompiledQuery
	for _, q := range script.Queries {
		cq, err := Compile(cat, q, opts)
		if err != nil {
			return nil, err
		}
		out = append(out, cq)
	}
	return out, nil
}

// ProtocolSchema converts a parsed PROTOCOL definition into a schema,
// flattening the base protocol's columns first.
func ProtocolSchema(def *gsql.ProtocolDef) (*schema.Schema, error) {
	s := &schema.Schema{Name: def.Name, Kind: schema.KindProtocol, Base: def.Base}
	for _, c := range def.Cols {
		s.Cols = append(s.Cols, schema.Column{
			Name: c.Name, Type: c.Type, Interp: c.Interp, Ordering: c.Ord,
		})
	}
	if err := s.Validate(); err != nil {
		return nil, &Error{Err: err}
	}
	return s, nil
}

// compileSingle handles single-source SELECT queries, applying the
// LFTA/HFTA split when the source is a protocol.
func (a *analyzer) compileSingle(name string, src SourceRef, q *gsql.Query) ([]*Node, error) {
	isAgg := len(q.GroupBy) > 0
	if !isAgg {
		for _, item := range q.Select {
			if a.hasAggregate(item.Expr) {
				return nil, fmt.Errorf("aggregate in SELECT requires GROUP BY")
			}
		}
	}

	if !src.IsProtocol {
		// Stream input: a single HFTA node.
		if isAgg {
			n, err := a.buildAgg(name, LevelHFTA, src, q, false)
			return []*Node{n}, err
		}
		n, err := a.buildSelProj(name, LevelHFTA, src, q)
		return []*Node{n}, err
	}

	// Protocol input: split (paper §3). Classify WHERE conjuncts by cost.
	var cheap, expensive []gsql.Expr
	for _, cj := range conjuncts(q.Where) {
		if a.exprCheap(cj) && !a.opts.disableSplit() {
			cheap = append(cheap, cj)
		} else {
			expensive = append(expensive, cj)
		}
	}

	if !isAgg {
		if len(expensive) == 0 && a.selectableCheap(q) && !a.opts.disableSplit() {
			// The whole query runs as an LFTA ("a simple query can execute
			// entirely as an LFTA").
			n, err := a.buildSelProj(name, LevelLFTA, src, q)
			return []*Node{n}, err
		}
		lfta, hq, err := a.passThroughLFTA(name, src, q, cheap, expensive)
		if err != nil {
			return nil, err
		}
		hfta, err := a.buildSelProj(name, LevelHFTA, a.streamRef(lfta), hq)
		if err != nil {
			return nil, err
		}
		return []*Node{lfta, hfta}, nil
	}

	// Aggregation over a protocol source.
	if len(expensive) == 0 && a.aggSplittable(q) && !a.opts.disableSplit() {
		return a.splitAggregate(name, src, q, cheap)
	}
	lfta, hq, err := a.passThroughLFTA(name, src, q, cheap, expensive)
	if err != nil {
		return nil, err
	}
	hfta, err := a.buildAgg(name, LevelHFTA, a.streamRef(lfta), hq, false)
	if err != nil {
		return nil, err
	}
	return []*Node{lfta, hfta}, nil
}

// selectableCheap reports whether every select expression is LFTA-safe.
func (a *analyzer) selectableCheap(q *gsql.Query) bool {
	for _, item := range q.Select {
		if !a.exprCheap(item.Expr) {
			return false
		}
	}
	return true
}

// aggSplittable reports whether the aggregation itself can run in the LFTA
// (all group expressions and aggregate arguments cheap).
func (a *analyzer) aggSplittable(q *gsql.Query) bool {
	for _, item := range q.GroupBy {
		if !a.exprCheap(item.Expr) {
			return false
		}
	}
	ok := true
	check := func(e gsql.Expr) {
		gsql.Walk(e, func(n gsql.Expr) bool {
			if call, isCall := n.(*gsql.FuncCall); isCall && a.reg.IsAggregate(call.Name) {
				for _, arg := range call.Args {
					if !a.exprCheap(arg) {
						ok = false
					}
				}
			}
			return true
		})
	}
	for _, item := range q.Select {
		check(item.Expr)
	}
	if q.Having != nil {
		check(q.Having)
	}
	return ok
}

// streamRef wraps an LFTA node's output as a source for the HFTA.
func (a *analyzer) streamRef(n *Node) SourceRef {
	return SourceRef{Name: n.Out.Name, Binding: n.Out.Name, Schema: n.Out}
}

// mangle builds the LFTA's mangled stream name (paper §3: "the LFTA query
// will have a mangled name").
func mangle(name string, i int) string {
	if i == 0 {
		return "_lfta_" + name
	}
	return fmt.Sprintf("_lfta_%s_%d", name, i)
}

// passThroughLFTA builds an LFTA that filters with the cheap conjuncts and
// projects every column the rest of the query needs, plus the rewritten
// HFTA query reading it.
func (a *analyzer) passThroughLFTA(name string, src SourceRef, q *gsql.Query,
	cheap, expensive []gsql.Expr) (*Node, *gsql.Query, error) {

	// Columns needed downstream: everything referenced anywhere in the
	// original query.
	var exprs []gsql.Expr
	for _, it := range q.Select {
		exprs = append(exprs, it.Expr)
	}
	for _, it := range q.GroupBy {
		exprs = append(exprs, it.Expr)
	}
	if q.Where != nil {
		exprs = append(exprs, q.Where)
	}
	if q.Having != nil {
		exprs = append(exprs, q.Having)
	}
	var items []gsql.SelectItem
	for _, c := range colRefs(exprs) {
		if i, col := src.Schema.Col(c.Name); i >= 0 {
			items = append(items, gsql.SelectItem{
				Expr: &gsql.ColRef{Name: col.Name, At: c.At},
			})
		}
	}
	if len(items) == 0 {
		return nil, nil, fmt.Errorf("query references no columns of %s", src.Schema.Name)
	}
	lq := &gsql.Query{
		Defs:    map[string][]string{"query_name": {mangle(name, 0)}},
		Kind:    gsql.KindSelect,
		Select:  items,
		Sources: []gsql.TableRef{{Interface: src.Interface, Name: src.Name}},
		Where:   conjoin(stripList(cheap)),
	}
	lfta, err := a.buildSelProj(mangle(name, 0), LevelLFTA, src, lq)
	if err != nil {
		return nil, nil, err
	}

	// HFTA: the original query over the LFTA stream, minus the cheap
	// predicates, with qualifiers stripped.
	hq := &gsql.Query{
		Defs:    q.Defs,
		Kind:    gsql.KindSelect,
		Sources: []gsql.TableRef{{Name: lfta.Name}},
		Where:   conjoin(stripList(expensive)),
	}
	for _, it := range q.Select {
		hq.Select = append(hq.Select, gsql.SelectItem{Expr: stripQualifiers(it.Expr), Alias: it.Alias})
	}
	for _, it := range q.GroupBy {
		hq.GroupBy = append(hq.GroupBy, gsql.SelectItem{Expr: stripQualifiers(it.Expr), Alias: it.Alias})
	}
	if q.Having != nil {
		hq.Having = stripQualifiers(q.Having)
	}
	return lfta, hq, nil
}

func stripList(es []gsql.Expr) []gsql.Expr {
	out := make([]gsql.Expr, len(es))
	for i, e := range es {
		out[i] = stripQualifiers(e)
	}
	return out
}

// splitAggregate implements the paper's §3 aggregate query splitting: the
// LFTA computes sub-aggregates into a direct-mapped table; the HFTA
// recombines the partials with super-aggregates.
func (a *analyzer) splitAggregate(name string, src SourceRef, q *gsql.Query, cheap []gsql.Expr) ([]*Node, error) {
	// Group item names in the LFTA output.
	usedNames := make(map[string]bool)
	groupNames := make([]string, len(q.GroupBy))
	for i, item := range q.GroupBy {
		n, err := outName(item, i, usedNames)
		if err != nil {
			return nil, fmt.Errorf("group-by: %w", err)
		}
		groupNames[i] = n
	}

	// Collect distinct aggregate calls from SELECT and HAVING.
	type aggCall struct {
		call *gsql.FuncCall
		spec *funcs.Aggregate
		subs []string // LFTA output column names for the sub-aggregates
	}
	var calls []*aggCall
	canonSlot := make(map[string]int)
	scan := func(e gsql.Expr) {
		gsql.Walk(e, func(x gsql.Expr) bool {
			call, ok := x.(*gsql.FuncCall)
			if !ok || !a.reg.IsAggregate(call.Name) {
				return true
			}
			canon := strings.ToLower(call.Name) + "(" + argsText(call.Args) + ")"
			if _, dup := canonSlot[canon]; !dup {
				spec, _ := a.reg.Aggregate(call.Name)
				canonSlot[canon] = len(calls)
				calls = append(calls, &aggCall{call: call, spec: spec})
			}
			return false // don't descend into aggregate args
		})
	}
	for _, it := range q.Select {
		scan(it.Expr)
	}
	if q.Having != nil {
		scan(q.Having)
	}
	if len(calls) == 0 {
		return nil, fmt.Errorf("GROUP BY without any aggregate")
	}

	// LFTA query: group items + sub-aggregates.
	lname := mangle(name, 0)
	lq := &gsql.Query{
		Defs:    map[string][]string{"query_name": {lname}},
		Kind:    gsql.KindSelect,
		Sources: []gsql.TableRef{{Interface: src.Interface, Name: src.Name}},
		Where:   conjoin(stripList(cheap)),
	}
	for i, item := range q.GroupBy {
		g := gsql.SelectItem{Expr: stripQualifiers(item.Expr), Alias: groupNames[i]}
		lq.GroupBy = append(lq.GroupBy, g)
		lq.Select = append(lq.Select, g)
	}
	for ci, c := range calls {
		for si, sub := range c.spec.Subs {
			colName := fmt.Sprintf("sub%d_%d", ci, si)
			c.subs = append(c.subs, colName)
			var args []gsql.Expr
			for _, arg := range c.call.Args {
				if _, star := arg.(*gsql.Star); star {
					args = append(args, &gsql.Star{At: c.call.At})
				} else {
					args = append(args, stripQualifiers(arg))
				}
			}
			subAgg, ok := a.reg.Aggregate(sub)
			if !ok {
				return nil, fmt.Errorf("sub-aggregate %s of %s unregistered", sub, c.spec.Name)
			}
			if subAgg.TakesArg {
				// Sub-aggregates over the same argument; count-style subs
				// keep the original argument list.
				if len(args) == 1 {
					if _, star := args[0].(*gsql.Star); star && subAgg.TakesArg {
						return nil, fmt.Errorf("%s cannot take '*'", sub)
					}
				}
			}
			lq.Select = append(lq.Select, gsql.SelectItem{
				Expr:  &gsql.FuncCall{Name: sub, Args: args, At: c.call.At},
				Alias: colName,
			})
		}
	}
	lfta, err := a.buildAgg(lname, LevelLFTA, src, lq, true)
	if err != nil {
		return nil, err
	}

	// HFTA query: original select/having with each aggregate call
	// replaced by its super-aggregate recombination over the partials.
	// Aggregates must be replaced BEFORE group-key references are renamed:
	// renaming descends into aggregate arguments and changes their
	// canonical text, which would break the canonSlot lookup (e.g.
	// max(caplen + destPort) with destPort also a group key).
	var rewriteErr error
	rewrite := func(e gsql.Expr) gsql.Expr {
		return transform(e, func(x gsql.Expr) gsql.Expr {
			call, ok := x.(*gsql.FuncCall)
			if !ok || !a.reg.IsAggregate(call.Name) {
				return nil
			}
			canon := strings.ToLower(call.Name) + "(" + argsText(call.Args) + ")"
			slot, ok := canonSlot[canon]
			if !ok {
				if rewriteErr == nil {
					rewriteErr = fmt.Errorf("internal: aggregate %s not collected during split", canon)
				}
				return x
			}
			c := calls[slot]
			superOf := func(i int) gsql.Expr {
				return &gsql.FuncCall{
					Name: c.spec.Supers[i],
					Args: []gsql.Expr{&gsql.ColRef{Name: c.subs[i], At: call.At}},
					At:   call.At,
				}
			}
			switch c.spec.Final {
			case funcs.FinalRatio:
				return &gsql.BinaryExpr{
					Op: gsql.OpDiv,
					L:  &gsql.FuncCall{Name: "to_float", Args: []gsql.Expr{superOf(0)}, At: call.At},
					R:  &gsql.FuncCall{Name: "to_float", Args: []gsql.Expr{superOf(1)}, At: call.At},
					At: call.At,
				}
			case funcs.FinalScalarCall:
				// Sketch aggregates: the union super yields a partial-sketch
				// blob; the registered finalizer scalar extracts the answer.
				return &gsql.FuncCall{
					Name: c.spec.Finalizer,
					Args: []gsql.Expr{superOf(0)},
					At:   call.At,
				}
			default:
				return superOf(0)
			}
		})
	}
	hq := &gsql.Query{
		Defs:    q.Defs,
		Kind:    gsql.KindSelect,
		Sources: []gsql.TableRef{{Name: lname}},
	}
	for i := range q.GroupBy {
		hq.GroupBy = append(hq.GroupBy, gsql.SelectItem{
			Expr: &gsql.ColRef{Name: groupNames[i]}, Alias: groupNames[i],
		})
	}
	for _, it := range q.Select {
		e := stripQualifiersKeepingGroups(rewrite(it.Expr), q.GroupBy, groupNames)
		hq.Select = append(hq.Select, gsql.SelectItem{Expr: e, Alias: it.Alias})
	}
	if q.Having != nil {
		hq.Having = stripQualifiersKeepingGroups(rewrite(q.Having), q.GroupBy, groupNames)
	}
	if rewriteErr != nil {
		return nil, rewriteErr
	}
	hfta, err := a.buildAgg(name, LevelHFTA, a.streamRef(lfta), hq, false)
	if err != nil {
		return nil, err
	}
	return []*Node{lfta, hfta}, nil
}

// stripQualifiersKeepingGroups strips qualifiers and replaces group-by
// expressions with references to their LFTA output names.
func stripQualifiersKeepingGroups(e gsql.Expr, groups []gsql.SelectItem, names []string) gsql.Expr {
	return transform(e, func(x gsql.Expr) gsql.Expr {
		for i, g := range groups {
			if x.String() == g.Expr.String() {
				return &gsql.ColRef{Name: names[i], At: x.Pos()}
			}
			if c, ok := x.(*gsql.ColRef); ok && g.Alias != "" && strings.EqualFold(c.Name, g.Alias) {
				return &gsql.ColRef{Name: names[i], At: x.Pos()}
			}
		}
		if c, ok := x.(*gsql.ColRef); ok && c.Table != "" {
			return &gsql.ColRef{Name: c.Name, At: c.At}
		}
		return nil
	})
}

// compileJoin wraps protocol sources in pass-through LFTAs (HFTAs accept
// only stream input, paper §3) and builds the join HFTA.
func (a *analyzer) compileJoin(name string, srcs []SourceRef, q *gsql.Query) ([]*Node, error) {
	var nodes []*Node
	wrapped := make([]SourceRef, len(srcs))
	rq := q
	for i, src := range srcs {
		if !src.IsProtocol {
			wrapped[i] = src
			continue
		}
		lfta, newQ, err := a.wrapProtocolForMulti(name, i, src, rq)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, lfta)
		wrapped[i] = SourceRef{Name: lfta.Name, Binding: src.Binding, Schema: lfta.Out}
		rq = newQ
	}
	join, err := a.buildJoin(name, LevelHFTA, wrapped, rq)
	if err != nil {
		return nil, err
	}
	return append(nodes, join), nil
}

// compileMerge likewise wraps protocol sources, then builds the merge.
func (a *analyzer) compileMerge(name string, srcs []SourceRef, q *gsql.Query) ([]*Node, error) {
	var nodes []*Node
	wrapped := make([]SourceRef, len(srcs))
	rq := q
	for i, src := range srcs {
		if !src.IsProtocol {
			wrapped[i] = src
			continue
		}
		lfta, newQ, err := a.wrapProtocolForMulti(name, i, src, rq)
		if err != nil {
			return nil, err
		}
		nodes = append(nodes, lfta)
		wrapped[i] = SourceRef{Name: lfta.Name, Binding: src.Binding, Schema: lfta.Out}
		rq = newQ
	}
	merge, err := a.buildMerge(name, LevelHFTA, wrapped, rq)
	if err != nil {
		return nil, err
	}
	return append(nodes, merge), nil
}

// wrapProtocolForMulti synthesizes a pass-through LFTA projecting the full
// protocol schema for one input of a join/merge, and rewrites the parent
// query to read the LFTA stream under the same binding.
func (a *analyzer) wrapProtocolForMulti(name string, idx int, src SourceRef, q *gsql.Query) (*Node, *gsql.Query, error) {
	lname := mangle(name, idx)
	lq := &gsql.Query{
		Defs:    map[string][]string{"query_name": {lname}},
		Kind:    gsql.KindSelect,
		Sources: []gsql.TableRef{{Interface: src.Interface, Name: src.Name}},
	}
	for _, c := range src.Schema.Cols {
		lq.Select = append(lq.Select, gsql.SelectItem{Expr: &gsql.ColRef{Name: c.Name}})
	}
	lfta, err := a.buildSelProj(lname, LevelLFTA, src, lq)
	if err != nil {
		return nil, nil, err
	}
	// Rewrite the parent: replace this source with the LFTA stream,
	// keeping the binding so qualified references still resolve.
	nq := *q
	nq.Sources = append([]gsql.TableRef(nil), q.Sources...)
	nq.Sources[idx] = gsql.TableRef{Name: lname, Alias: src.Binding}
	return lfta, &nq, nil
}
