package difftest

import (
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
)

// Greedy repro minimizer: shrink a failing case while the mismatch keeps
// reproducing. Three passes, each re-validated with a full pipeline-vs-
// oracle Check:
//
//  1. drop whole queries (a dropped query another one feeds from makes
//     the candidate fail to compile, which the predicate rejects);
//  2. simplify each surviving query's text: drop HAVING, drop WHERE
//     conjuncts one at a time, drop trailing select items;
//  3. ddmin-style trace reduction with doubling granularity.
//
// Every candidate is judged by the same predicate — "does Check still
// report a mismatch with no harness error" — so the minimizer can never
// turn a real divergence into a compile error or a different bug class.

// DefaultMinimizeBudget caps the number of full Check executions one
// minimization may spend.
const DefaultMinimizeBudget = 80

type minimizer struct {
	cfg    Config
	budget int
}

// fails reports whether the candidate still reproduces the divergence.
// A harness error (compile failure, shedding) rejects the candidate.
func (m *minimizer) fails(c *Case) bool {
	if m.budget <= 0 {
		return false
	}
	m.budget--
	mm, err := Check(c, m.cfg)
	return err == nil && mm != nil
}

// Minimize returns the smallest failing case the budget allowed. The
// input case must already fail under cfg; it is not modified.
func Minimize(c *Case, cfg Config, budget int) *Case {
	if budget <= 0 {
		budget = DefaultMinimizeBudget
	}
	m := &minimizer{cfg: cfg, budget: budget}
	cur := &Case{Seed: c.Seed, Queries: append([]string(nil), c.Queries...),
		Params: c.Params, Trace: c.Trace, Script: c.Script}
	cur = m.dropQueries(cur)
	cur = m.simplifyQueries(cur)
	cur = m.reduceTrace(cur)
	return cur
}

func (m *minimizer) dropQueries(c *Case) *Case {
	for i := len(c.Queries) - 1; i >= 0 && len(c.Queries) > 1; i-- {
		cand := &Case{Seed: c.Seed, Params: c.Params, Trace: c.Trace, Script: c.Script,
			Queries: append(append([]string(nil), c.Queries[:i]...), c.Queries[i+1:]...)}
		if m.fails(cand) {
			c = cand
		}
	}
	return c
}

// conjuncts flattens an AND tree into its leaves.
func conjuncts(e gsql.Expr) []gsql.Expr {
	if b, ok := e.(*gsql.BinaryExpr); ok && b.Op == gsql.OpAnd {
		return append(conjuncts(b.L), conjuncts(b.R)...)
	}
	return []gsql.Expr{e}
}

func andJoin(es []gsql.Expr) gsql.Expr {
	if len(es) == 0 {
		return nil
	}
	e := es[0]
	for _, x := range es[1:] {
		e = &gsql.BinaryExpr{Op: gsql.OpAnd, L: e, R: x}
	}
	return e
}

// simplifyVariants yields progressively simpler renderings of one query.
func simplifyVariants(text string) []string {
	q, err := gsql.ParseQuery(text)
	if err != nil {
		return nil
	}
	var out []string
	if q.Having != nil {
		saved := q.Having
		q.Having = nil
		out = append(out, q.String())
		q.Having = saved
	}
	if q.Where != nil {
		cs := conjuncts(q.Where)
		saved := q.Where
		for i := range cs {
			rest := append(append([]gsql.Expr(nil), cs[:i]...), cs[i+1:]...)
			q.Where = andJoin(rest)
			out = append(out, q.String())
		}
		q.Where = saved
	}
	if len(q.Select) > 1 {
		saved := q.Select
		q.Select = saved[:len(saved)-1]
		out = append(out, q.String())
		q.Select = saved
	}
	return out
}

func (m *minimizer) simplifyQueries(c *Case) *Case {
	for i := 0; i < len(c.Queries); i++ {
		progress := true
		for progress && m.budget > 0 {
			progress = false
			for _, v := range simplifyVariants(c.Queries[i]) {
				qs := append([]string(nil), c.Queries...)
				qs[i] = v
				cand := &Case{Seed: c.Seed, Params: c.Params, Trace: c.Trace, Queries: qs, Script: c.Script}
				if m.fails(cand) {
					c = cand
					progress = true
					break
				}
			}
		}
	}
	return c
}

// reduceTrace removes trace chunks while the failure persists, halving
// the chunk size each round (ddmin's complement-removal core).
func (m *minimizer) reduceTrace(c *Case) *Case {
	const minChunk = 32
	for chunk := (len(c.Trace) + 1) / 2; chunk >= minChunk; chunk /= 2 {
		removed := true
		for removed && m.budget > 0 {
			removed = false
			for start := 0; start < len(c.Trace); start += chunk {
				end := start + chunk
				if end > len(c.Trace) {
					end = len(c.Trace)
				}
				trace := make([]pkt.Packet, 0, len(c.Trace)-(end-start))
				trace = append(trace, c.Trace[:start]...)
				trace = append(trace, c.Trace[end:]...)
				if len(trace) == 0 {
					continue
				}
				cand := &Case{Seed: c.Seed, Params: c.Params, Queries: c.Queries, Trace: trace, Script: c.Script}
				if m.fails(cand) {
					c = cand
					removed = true
					break
				}
			}
		}
	}
	return c
}
