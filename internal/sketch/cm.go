package sketch

import (
	"encoding/binary"
	"fmt"
	"math"
)

// CountMin is the Cormode–Muthukrishnan Count-Min sketch: a depth x width
// counter matrix where every key increments one counter per row (chosen by
// a per-row hash) and a point query returns the minimum over its counters.
// With width = ceil(e/eps) and depth = ceil(ln(1/delta)), the estimate
// overcounts the true frequency by at most eps*N (N = total count added)
// with probability at least 1-delta, and never undercounts.
//
// Merge is element-wise counter addition, so merging per-partition sketches
// gives exactly the single-pass sketch: estimates are invariant under any
// partitioning of the input.
type CountMin struct {
	width, depth int
	total        uint64
	counts       []uint64 // depth rows of width counters
}

const cmSeedStep = 0x9e3779b97f4a7c15 // golden-ratio increment per row

// NewCountMin sizes a sketch for the (eps, delta) guarantee.
func NewCountMin(eps, delta float64) (*CountMin, error) {
	if err := checkFraction("eps", eps); err != nil {
		return nil, err
	}
	if err := checkFraction("delta", delta); err != nil {
		return nil, err
	}
	width := int(math.Ceil(math.E / eps))
	depth := int(math.Ceil(math.Log(1 / delta)))
	if depth < 1 {
		depth = 1
	}
	return &CountMin{width: width, depth: depth, counts: make([]uint64, width*depth)}, nil
}

// Add counts n occurrences of key.
func (c *CountMin) Add(key []byte, n uint64) {
	h1 := Hash64(key, 0)
	h2 := Hash64(key, cmSeedStep) | 1
	for i := 0; i < c.depth; i++ {
		idx := (h1 + uint64(i)*h2) % uint64(c.width)
		c.counts[i*c.width+int(idx)] += n
	}
	c.total += n
}

// Estimate returns the point-query estimate for key: an overcount of the
// true frequency by at most Eps()*Total() with probability 1-Delta().
func (c *CountMin) Estimate(key []byte) uint64 {
	h1 := Hash64(key, 0)
	h2 := Hash64(key, cmSeedStep) | 1
	est := uint64(math.MaxUint64)
	for i := 0; i < c.depth; i++ {
		idx := (h1 + uint64(i)*h2) % uint64(c.width)
		if v := c.counts[i*c.width+int(idx)]; v < est {
			est = v
		}
	}
	return est
}

// Total is the sum of all counts added (the N in the eps*N error bound).
func (c *CountMin) Total() uint64 { return c.total }

// Eps is the additive error fraction the current width guarantees.
func (c *CountMin) Eps() float64 { return math.E / float64(c.width) }

// Delta is the failure probability the current depth guarantees.
func (c *CountMin) Delta() float64 { return math.Exp(-float64(c.depth)) }

// Merge adds o into c. The sketches must have identical dimensions (same
// eps/delta at construction).
func (c *CountMin) Merge(o *CountMin) error {
	if c.width != o.width || c.depth != o.depth {
		return fmt.Errorf("sketch: count-min dimension mismatch (%dx%d vs %dx%d)",
			c.depth, c.width, o.depth, o.width)
	}
	for i, v := range o.counts {
		c.counts[i] += v
	}
	c.total += o.total
	return nil
}

// Footprint is the approximate in-memory size in bytes.
func (c *CountMin) Footprint() int { return 48 + 8*len(c.counts) }

// AppendBinary serializes the sketch.
func (c *CountMin) AppendBinary(dst []byte) []byte {
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.depth))
	dst = binary.BigEndian.AppendUint32(dst, uint32(c.width))
	dst = binary.BigEndian.AppendUint64(dst, c.total)
	for _, v := range c.counts {
		dst = binary.BigEndian.AppendUint64(dst, v)
	}
	return dst
}

// ParseCountMin deserializes a sketch written by AppendBinary, returning it
// and the number of bytes consumed.
func ParseCountMin(b []byte) (*CountMin, int, error) {
	if len(b) < 16 {
		return nil, 0, fmt.Errorf("sketch: short count-min header")
	}
	depth := int(binary.BigEndian.Uint32(b))
	width := int(binary.BigEndian.Uint32(b[4:]))
	total := binary.BigEndian.Uint64(b[8:])
	if depth < 1 || width < 1 || depth > 64 || width > 1<<28 {
		return nil, 0, fmt.Errorf("sketch: implausible count-min dimensions %dx%d", depth, width)
	}
	n := depth * width
	if len(b) < 16+8*n {
		return nil, 0, fmt.Errorf("sketch: truncated count-min body")
	}
	c := &CountMin{width: width, depth: depth, total: total, counts: make([]uint64, n)}
	for i := 0; i < n; i++ {
		c.counts[i] = binary.BigEndian.Uint64(b[16+8*i:])
	}
	return c, 16 + 8*n, nil
}
