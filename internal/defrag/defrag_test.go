package defrag

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"gigascope/internal/exec"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// ipv4Schema returns the built-in IPV4 schema (defrag's natural input).
func ipv4Schema(t *testing.T) *schema.Schema {
	t.Helper()
	for _, s := range pkt.BuiltinSchemas() {
		if s.Name == "IPV4" {
			return s
		}
	}
	t.Fatal("IPV4 schema missing")
	return nil
}

// tupleFor extracts the full IPV4 tuple from a packet.
func tupleFor(t *testing.T, s *schema.Schema, p *pkt.Packet) schema.Tuple {
	t.Helper()
	row := make(schema.Tuple, len(s.Cols))
	for i, c := range s.Cols {
		f, ok := pkt.LookupInterp(c.Interp)
		if !ok {
			t.Fatalf("interp %s missing", c.Interp)
		}
		v, ok := f.Extract(p)
		if !ok {
			t.Fatalf("extract %s failed", c.Interp)
		}
		row[i] = v
	}
	return row
}

func newOp(t *testing.T, timeout uint64) (*Operator, *schema.Schema) {
	t.Helper()
	s := ipv4Schema(t)
	cfg, err := ConfigFor(s)
	if err != nil {
		t.Fatal(err)
	}
	cfg.TimeoutSec = timeout
	op, err := New(cfg, s)
	if err != nil {
		t.Fatal(err)
	}
	return op, s
}

func TestConfigForRequiresColumns(t *testing.T) {
	s := ipv4Schema(t)
	if _, err := ConfigFor(s); err != nil {
		t.Fatalf("IPV4 schema rejected: %v", err)
	}
	bad := &schema.Schema{Name: "bad", Kind: schema.KindStream, Cols: []schema.Column{
		{Name: "time", Type: schema.TUint},
	}}
	if _, err := ConfigFor(bad); err == nil {
		t.Error("schema without fragment columns accepted")
	}
}

func TestPassThroughUnfragmented(t *testing.T) {
	op, s := newOp(t, 30)
	p := pkt.BuildTCP(1_000_000, pkt.TCPSpec{SrcIP: 1, DstIP: 2, DstPort: 80, Payload: []byte("abc")})
	var out []exec.Message
	if err := op.Push(0, exec.TupleMsg(tupleFor(t, s, &p)), exec.Collect(&out)); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("out = %v", out)
	}
	if op.Pending() != 0 {
		t.Error("pass-through left state")
	}
}

func TestReassemblesFragments(t *testing.T) {
	op, s := newOp(t, 30)
	payload := bytes.Repeat([]byte("0123456789"), 150) // 1500B
	orig := pkt.BuildTCP(2_000_000, pkt.TCPSpec{SrcIP: 7, DstIP: 8, DstPort: 80, Payload: payload})
	frags, err := pkt.Fragment(&orig, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("only %d fragments", len(frags))
	}
	var out []exec.Message
	emit := exec.Collect(&out)
	for i := range frags {
		if err := op.Push(0, exec.TupleMsg(tupleFor(t, s, &frags[i])), emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d tuples", len(out))
	}
	got := out[0].Tuple
	payIdx, _ := s.Col("ip_payload")
	fragIdx, _ := s.Col("fragment_offset")
	mfIdx, _ := s.Col("mf_flag")
	tlIdx, _ := s.Col("total_length")
	// The reassembled IP payload = TCP header + original payload.
	wantPayload := orig.Data[pkt.EthHeaderLen+pkt.IPv4HeaderLen:]
	if !bytes.Equal(got[payIdx].Bytes(), wantPayload) {
		t.Errorf("payload mismatch: %d vs %d bytes", len(got[payIdx].Bytes()), len(wantPayload))
	}
	if got[fragIdx].Uint() != 0 || got[mfIdx].Uint() != 0 {
		t.Error("fragment fields not cleared")
	}
	if got[tlIdx].Uint() != uint64(20+len(wantPayload)) {
		t.Errorf("total_length = %d", got[tlIdx].Uint())
	}
	if op.Pending() != 0 {
		t.Error("state left after reassembly")
	}
}

func TestInterleavedFlowsAndOutOfOrderFragments(t *testing.T) {
	op, s := newOp(t, 30)
	mk := func(src uint32, payload []byte) []pkt.Packet {
		p := pkt.BuildTCP(3_000_000, pkt.TCPSpec{SrcIP: src, DstIP: 9, DstPort: 80, Payload: payload})
		frags, err := pkt.Fragment(&p, 600)
		if err != nil {
			t.Fatal(err)
		}
		return frags
	}
	a := mk(1, bytes.Repeat([]byte{0xaa}, 1200))
	b := mk(2, bytes.Repeat([]byte{0xbb}, 1200))
	// Interleave and reverse within each datagram.
	var seq []pkt.Packet
	for i := len(a) - 1; i >= 0; i-- {
		seq = append(seq, a[i], b[i])
	}
	var out []exec.Message
	emit := exec.Collect(&out)
	for i := range seq {
		if err := op.Push(0, exec.TupleMsg(tupleFor(t, s, &seq[i])), emit); err != nil {
			t.Fatal(err)
		}
	}
	if len(out) != 2 {
		t.Fatalf("emitted %d datagrams, want 2", len(out))
	}
	payIdx, _ := s.Col("ip_payload")
	for _, m := range out {
		pay := m.Tuple[payIdx].Bytes()
		if len(pay) != pkt.TCPHeaderLen+1200 {
			t.Errorf("payload len = %d", len(pay))
		}
	}
}

func TestTimeoutEvictsIncomplete(t *testing.T) {
	op, s := newOp(t, 5)
	payload := bytes.Repeat([]byte{1}, 1200)
	orig := pkt.BuildTCP(10_000_000, pkt.TCPSpec{SrcIP: 3, DstIP: 4, DstPort: 80, Payload: payload})
	frags, err := pkt.Fragment(&orig, 600)
	if err != nil {
		t.Fatal(err)
	}
	var out []exec.Message
	emit := exec.Collect(&out)
	// Only the first fragment arrives.
	op.Push(0, exec.TupleMsg(tupleFor(t, s, &frags[0])), emit)
	if op.Pending() != 1 {
		t.Fatalf("pending = %d", op.Pending())
	}
	// A later whole packet moves time past the timeout.
	late := pkt.BuildTCP(30_000_000, pkt.TCPSpec{SrcIP: 5, DstIP: 6, DstPort: 80, Payload: []byte("x")})
	op.Push(0, exec.TupleMsg(tupleFor(t, s, &late)), emit)
	if op.Pending() != 0 || op.EvictedIncomplete() != 1 {
		t.Errorf("pending = %d, evicted = %d", op.Pending(), op.EvictedIncomplete())
	}
	// Only the late whole packet was emitted.
	if len(out) != 1 {
		t.Errorf("out = %d", len(out))
	}
}

func TestHeartbeatAdvancesAndForwards(t *testing.T) {
	op, s := newOp(t, 5)
	payload := bytes.Repeat([]byte{1}, 1200)
	orig := pkt.BuildTCP(10_000_000, pkt.TCPSpec{SrcIP: 3, DstIP: 4, DstPort: 80, Payload: payload})
	frags, _ := pkt.Fragment(&orig, 600)
	var out []exec.Message
	emit := exec.Collect(&out)
	op.Push(0, exec.TupleMsg(tupleFor(t, s, &frags[0])), emit)
	bounds := make(schema.Tuple, len(s.Cols))
	ti, _ := s.Col("time")
	bounds[ti] = schema.MakeUint(100)
	op.Push(0, exec.HeartbeatMsg(bounds), emit)
	if op.Pending() != 0 {
		t.Error("heartbeat did not evict")
	}
	if len(out) != 1 || !out[0].IsHeartbeat() {
		t.Errorf("out = %v", out)
	}
}

func TestFlushAllDropsIncomplete(t *testing.T) {
	op, s := newOp(t, 30)
	payload := bytes.Repeat([]byte{1}, 1200)
	orig := pkt.BuildTCP(1_000_000, pkt.TCPSpec{SrcIP: 3, DstIP: 4, DstPort: 80, Payload: payload})
	frags, _ := pkt.Fragment(&orig, 600)
	var out []exec.Message
	op.Push(0, exec.TupleMsg(tupleFor(t, s, &frags[0])), exec.Collect(&out))
	op.FlushAll(exec.Collect(&out))
	if op.Pending() != 0 || op.EvictedIncomplete() != 1 {
		t.Errorf("pending = %d, evicted = %d", op.Pending(), op.EvictedIncomplete())
	}
}

func TestDefragMatchesReassembleProperty(t *testing.T) {
	// Fragment a random payload at a random MTU, shuffle the fragments,
	// and check the operator's payload equals pkt.Reassemble's.
	s := ipv4Schema(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 200 + r.Intn(2000)
		payload := make([]byte, n)
		r.Read(payload)
		orig := pkt.BuildUDP(uint64(1e6+r.Intn(1000)), pkt.UDPSpec{
			SrcIP: r.Uint32(), DstIP: r.Uint32(), DstPort: 53, Payload: payload,
		})
		mtu := 200 + r.Intn(400)
		frags, err := pkt.Fragment(&orig, mtu)
		if err != nil {
			return false
		}
		want, err := pkt.Reassemble(frags)
		if err != nil {
			return false
		}
		r.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })

		cfg, err := ConfigFor(s)
		if err != nil {
			return false
		}
		op, err := New(cfg, s)
		if err != nil {
			return false
		}
		var out []exec.Message
		for i := range frags {
			row := make(schema.Tuple, len(s.Cols))
			okAll := true
			for ci, c := range s.Cols {
				fn, _ := pkt.LookupInterp(c.Interp)
				v, ok := fn.Extract(&frags[i])
				if !ok {
					okAll = false
					break
				}
				row[ci] = v
			}
			if !okAll {
				return false
			}
			op.Push(0, exec.TupleMsg(row), exec.Collect(&out))
		}
		if len(out) != 1 {
			return false
		}
		payIdx, _ := s.Col("ip_payload")
		wantPay := want.Data[pkt.EthHeaderLen+pkt.IPv4HeaderLen:]
		return bytes.Equal(out[0].Tuple[payIdx].Bytes(), wantPay)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
