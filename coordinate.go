package gigascope

import (
	"fmt"
	"strings"
	"time"

	"gigascope/internal/coord"
	"gigascope/internal/core"
	"gigascope/internal/gsql"
)

// Topology / Manifest aliases: the coordinator layer (internal/coord)
// exposed through the root API. A Topology describes the hosts — CPU
// budgets, captured interfaces, wire listen addresses, link costs; a
// Manifest is the deterministic operator placement the coordinator
// derives from it plus a compiled script.
type (
	// Topology is a parsed host topology; see ParseTopology.
	Topology = coord.Topology
	// Manifest is a deployment plan; see PlaceScript.
	Manifest = coord.Manifest
	// CostModel feeds the placement scoring; see coord.DefaultCostModel.
	CostModel = coord.CostModel
)

// ParseTopology parses a topology description (see internal/coord for
// the syntax). All malformed input returns a positioned *coord.ParseError.
func ParseTopology(src string) (*Topology, error) { return coord.ParseTopology(src) }

// StreamPlacement is the SYSMON stream carrying placement decisions and
// per-host budget utilization (published on the sink host of a placed
// deployment when Config.SelfMonitor is set).
const StreamPlacement = coord.StreamPlacement

// PlaceScript compiles the script against a scratch System configured
// like cfg and places it over the topology: the pure planning half of
// the coordinator, identical on every host and every process given the
// same (script, cfg, topology, seed, costs) — which is what lets N
// independent processes each derive the same manifest and play their own
// part of it.
func PlaceScript(script string, topo *Topology, cfg Config, seed int64, costs *CostModel) (*Manifest, error) {
	res, _, err := compileForPlacement(script, cfg)
	if err != nil {
		return nil, err
	}
	return coord.Place(res.Queries, topo, coord.PlaceOptions{Seed: seed, Costs: costs})
}

// compileForPlacement compiles the script on a throwaway System so
// placement can see the query node graph without touching live state.
func compileForPlacement(script string, cfg Config) (*core.ScriptResult, *System, error) {
	scratch, err := New(cfg)
	if err != nil {
		return nil, nil, err
	}
	if cfg.SelfMonitor {
		// Placement telemetry is part of the catalog surface scripts may
		// read; mirror what StartHost registers.
		if err := scratch.catalog.Register(coord.PlacementSchema()); err != nil {
			return nil, nil, err
		}
	}
	parsed, err := gsql.ParseScript(script)
	if err != nil {
		return nil, nil, err
	}
	res, err := core.CompileScriptPlan(scratch.catalog, parsed, scratch.compileOptions())
	if err != nil {
		return nil, nil, err
	}
	return res, scratch, nil
}

// HostConfig configures StartHost: one host's share of a placed
// deployment.
type HostConfig struct {
	Script string
	// Params carries per-query parameter bindings (outer key: query
	// name, case-insensitive), as in AddScriptParams.
	Params map[string]map[string]Value
	// Topology and Host select this host's plan. Manifest may be nil, in
	// which case it is re-derived from (Script, System, Topology, Seed,
	// Costs) — byte-identical on every host by construction.
	Topology *Topology
	Manifest *Manifest
	Host     string
	Seed     int64
	Costs    *CostModel
	// System is the base configuration every host System starts from.
	System Config
	// Addrs overrides per-host wire addresses ("unix:/path" or
	// "tcp:host:port"); hosts absent here use their topology listen
	// directive.
	Addrs map[string]string
	// ConnectTimeout bounds the retry loop dialing each import (default
	// 10s): remote processes may still be binding their listeners.
	ConnectTimeout time.Duration
	// Degrade / DeadAfter configure every wire import's failure policy.
	Degrade   DegradePolicy
	DeadAfter int
	// BackoffMin / BackoffMax bound every import's reconnect backoff
	// (zero keeps the wire defaults, 50ms/5s).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// WireHeartbeat overrides the export server's wall-clock keepalive
	// interval (zero keeps the wire default, 100ms).
	WireHeartbeat time.Duration
	// ServerFaults / ClientFaults wrap this host's wire transports with
	// seeded fault injection (tests).
	ServerFaults *WireFaults
	ClientFaults *WireFaults
}

// HostSession is one running host of a placed deployment.
type HostSession struct {
	Host     string
	manifest *Manifest
	plan     *coord.HostPlan
	sys      *System
	srv      *WireServer
	clients  []*WireClient
}

// System returns the host's System (inject traffic, read stats,
// subscribe to locally-present streams).
func (h *HostSession) System() *System { return h.sys }

// Server returns the host's wire server (nil when the host exports
// nothing).
func (h *HostSession) Server() *WireServer { return h.srv }

// Clients returns the host's wire imports.
func (h *HostSession) Clients() []*WireClient { return h.clients }

// Manifest returns the deployment manifest the session realizes.
func (h *HostSession) Manifest() *Manifest { return h.manifest }

// Addr returns the listen address of the host's wire server ("" when it
// serves nothing) — useful when the listener was bound to port 0.
func (h *HostSession) Addr() string {
	if h.srv == nil {
		return ""
	}
	return h.srv.Addr().String()
}

// AwaitSubscribers blocks until every import the manifest says other
// hosts open against this one has completed its handshake (the
// multi-process traffic barrier: inject only after downstream listens),
// or the timeout passes.
func (h *HostSession) AwaitSubscribers(timeout time.Duration) error {
	want := h.manifest.ExpectedSubscribers(h.Host)
	if want == 0 || h.srv == nil {
		return nil
	}
	deadline := time.Now().Add(timeout)
	for h.srv.Conns() < want {
		if time.Now().After(deadline) {
			return fmt.Errorf("gigascope: host %s: %d/%d subscribers after %v",
				h.Host, h.srv.Conns(), want, timeout)
		}
		time.Sleep(5 * time.Millisecond)
	}
	return nil
}

// Shutdown stops the host: imports are given up to drain to deliver
// their fin (producers stop first in Manifest.Order, so in an orderly
// teardown the fin is already in flight), the System flushes, and the
// server drains its remaining subscribers.
func (h *HostSession) Shutdown(drain time.Duration) {
	deadline := time.Now().Add(drain)
	for _, cl := range h.clients {
		select {
		case <-cl.Done():
		case <-time.After(time.Until(deadline)):
		}
	}
	h.sys.Stop()
	if h.srv != nil {
		h.srv.Drain(drain)
		h.srv.Close()
	}
	for _, cl := range h.clients {
		cl.Close()
	}
}

// hostAddr resolves the wire address of a host.
func hostAddr(cfg *HostConfig, host string) (network, addr string, err error) {
	if a, ok := cfg.Addrs[host]; ok && a != "" {
		n, ad := parseWireAddr(a)
		return n, ad, nil
	}
	if tn := cfg.Topology.Node(host); tn != nil && tn.Listen != "" {
		n, ad := parseWireAddr(tn.Listen)
		return n, ad, nil
	}
	return "", "", fmt.Errorf("gigascope: no wire address for host %s (topology listen directive or HostConfig.Addrs)", host)
}

func parseWireAddr(s string) (network, addr string) {
	switch {
	case strings.HasPrefix(s, "unix:"):
		return "unix", strings.TrimPrefix(s, "unix:")
	case strings.HasPrefix(s, "tcp:"):
		return "tcp", strings.TrimPrefix(s, "tcp:")
	}
	return "tcp", s
}

// StartHost brings up one host of a placed deployment: it re-derives (or
// receives) the manifest, compiles the script on a fresh System, installs
// exactly this host's assignments — LFTAs (partition instances renamed
// and registered) before Start, prefilters for captured interfaces, then
// the wire server, the imports, the reunify merges, and the HFTAs — and
// returns the running session.
//
// Every host executing StartHost for its own name against the same
// inputs yields the cooperating deployment: the manifest's startup order
// guarantees each import dials a host whose stream already exists.
func StartHost(cfg HostConfig) (*HostSession, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("gigascope: StartHost needs a topology")
	}
	if cfg.Topology.Node(cfg.Host) == nil {
		return nil, fmt.Errorf("gigascope: unknown host %s", cfg.Host)
	}
	m := cfg.Manifest
	if m == nil {
		var err error
		if m, err = PlaceScript(cfg.Script, cfg.Topology, cfg.System, cfg.Seed, cfg.Costs); err != nil {
			return nil, err
		}
	}
	hp := m.Host(cfg.Host)
	if hp == nil {
		return nil, fmt.Errorf("gigascope: host %s not in manifest", cfg.Host)
	}
	connectTimeout := cfg.ConnectTimeout
	if connectTimeout == 0 {
		connectTimeout = 10 * time.Second
	}

	sys, err := New(cfg.System)
	if err != nil {
		return nil, err
	}
	if cfg.System.SelfMonitor {
		// The sink publishes the placement telemetry stream; other hosts
		// register the schema so scripts reading it still compile (their
		// readers are pinned to the sink by placement).
		if cfg.Host == m.Sink {
			ps := coord.NewPlacementSampler(m, cfg.System.MonitorIntervalUsec)
			if err := sys.mgr.AddSourceNode(coord.StreamPlacement, ps); err != nil {
				return nil, err
			}
		} else if err := sys.catalog.Register(coord.PlacementSchema()); err != nil {
			return nil, err
		}
	}

	parsed, err := gsql.ParseScript(cfg.Script)
	if err != nil {
		return nil, err
	}
	res, err := core.CompileScriptPlan(sys.catalog, parsed, sys.compileOptions())
	if err != nil {
		return nil, err
	}
	nodeByName := map[string]*core.Node{}
	for _, q := range res.Queries {
		sys.plans[q.Name] = q
		for _, n := range q.Nodes {
			nodeByName[strings.ToLower(n.Name)] = n
		}
	}
	binds := make(map[string]map[string]Value, len(cfg.Params))
	for name, p := range cfg.Params {
		binds[strings.ToLower(name)] = p
	}

	// LFTA assignments install before Start (paper §3: the LFTA set is
	// frozen at start). Partition instances get renamed clones, plus a
	// catalog entry so the wire server can export them by name.
	captured := map[string]bool{}
	for _, a := range hp.Assignments {
		if a.Level != "lfta" {
			continue
		}
		n := nodeByName[strings.ToLower(a.Logical)]
		if n == nil {
			return nil, fmt.Errorf("gigascope: manifest node %s not in compiled script", a.Logical)
		}
		if a.Of > 1 {
			n = coord.PartitionNode(n, a.Partition)
			if err := sys.catalog.Register(n.Out); err != nil {
				return nil, err
			}
		}
		cq := &core.CompiledQuery{Name: a.Node, Nodes: []*core.Node{n}}
		if err := sys.mgr.AddQuery(cq, binds[strings.ToLower(a.Query)]); err != nil {
			return nil, err
		}
		captured[strings.ToLower(a.Interface)] = true
	}
	// Prefilters gate only interfaces this host captures. A renamed
	// partition LFTA no longer matches its gate key and simply runs
	// ungated — the gate only ever skips packets the LFTA's own
	// predicate would reject, so semantics are unchanged.
	if len(res.Prefilters) > 0 && len(captured) > 0 {
		var pfs []*core.Prefilter
		for _, pf := range res.Prefilters {
			name := pf.Interface
			if name == "" {
				name = "default"
			}
			if captured[strings.ToLower(name)] {
				pfs = append(pfs, pf)
			}
		}
		if len(pfs) > 0 {
			if err := sys.mgr.InstallPrefilters(pfs); err != nil {
				return nil, err
			}
		}
	}

	if err := sys.Start(); err != nil {
		return nil, err
	}
	h := &HostSession{Host: cfg.Host, manifest: m, plan: hp, sys: sys}

	fail := func(err error) (*HostSession, error) {
		h.Shutdown(0)
		return nil, err
	}

	if len(hp.Exports) > 0 {
		network, addr, err := hostAddr(&cfg, cfg.Host)
		if err != nil {
			return fail(err)
		}
		scfg := WireServerConfig{RingBatches: 8192, Heartbeat: cfg.WireHeartbeat}
		if cfg.ServerFaults != nil {
			scfg.WrapConn = cfg.ServerFaults.WrapConn
			scfg.SkewClock = cfg.ServerFaults.SkewClock
		}
		srv, err := sys.ServeWire(network, addr, scfg)
		if err != nil {
			return fail(err)
		}
		h.srv = srv
	}

	for i, imp := range hp.Imports {
		network, addr, err := hostAddr(&cfg, imp.From)
		if err != nil {
			return fail(err)
		}
		ccfg := WireClientConfig{
			Network:   network,
			Addr:      addr,
			Stream:    imp.Stream,
			LocalName:  imp.LocalName,
			Degrade:    cfg.Degrade,
			DeadAfter:  cfg.DeadAfter,
			BackoffMin: cfg.BackoffMin,
			BackoffMax: cfg.BackoffMax,
			Seed:       cfg.Seed + int64(i),
		}
		if cfg.ClientFaults != nil {
			ccfg.WrapConn = cfg.ClientFaults.WrapConn
		}
		// Retry until the producer's listener is up: process bring-up
		// order is ours to sequence in-process, but real processes race.
		deadline := time.Now().Add(connectTimeout)
		for {
			cl, err := sys.ConnectWire(ccfg)
			if err == nil {
				h.clients = append(h.clients, cl)
				break
			}
			if time.Now().After(deadline) {
				return fail(fmt.Errorf("gigascope: host %s: import %s from %s: %w",
					cfg.Host, imp.Stream, imp.From, err))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	for _, r := range hp.Reunify {
		if err := sys.AddReunifyNode(r.Name, r.Inputs); err != nil {
			return fail(err)
		}
	}

	// HFTAs last: their inputs — local LFTAs, imports, reunify merges —
	// are all registered now. Assignment order preserves the script's
	// query and node order, so same-host dependencies resolve in order.
	for _, a := range hp.Assignments {
		if a.Level != "hfta" {
			continue
		}
		n := nodeByName[strings.ToLower(a.Logical)]
		if n == nil {
			return fail(fmt.Errorf("gigascope: manifest node %s not in compiled script", a.Logical))
		}
		cq := &core.CompiledQuery{Name: a.Node, Nodes: []*core.Node{n}}
		if err := sys.mgr.AddQuery(cq, binds[strings.ToLower(a.Query)]); err != nil {
			return fail(err)
		}
	}
	return h, nil
}
