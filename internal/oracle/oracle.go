// Package oracle is a deliberately naive reference evaluator for the
// supported GSQL subset: selection/projection, grouped aggregation over
// time windows, ordered merge, and ordered join. It materializes every
// input, runs single-threaded and unbatched, and never reasons about
// watermarks, batching, sharding, or buffer bounds — the streaming
// machinery whose equivalence the differential harness checks is
// re-derived here from the AST in the most obvious way possible.
//
// The oracle deliberately shares two leaf libraries with the real
// pipeline: the scalar expression evaluator (internal/exec's Compiler over
// an input schema) and the aggregate-function registry (internal/funcs).
// Both are pure, stateless-per-row libraries; sharing them pins a single
// definition of scalar and NULL semantics so that a differential mismatch
// always indicts the streaming machinery (split, flush, merge, shard,
// batch) rather than an evaluator skew. Everything above that layer —
// packet interpretation loops, grouping, join pairing, merge interleave —
// is written independently from the query AST.
package oracle

import (
	"fmt"
	"sort"
	"strings"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// Result is one query's reference output. Rows are in the oracle's
// canonical order: input order for selections and joins, (ordered key,
// packed group key) for aggregations, merge-column order for merges.
// Consumers comparing against a parallel pipeline should compare as a
// multiset and check ordering properties separately, since the pipeline
// only promises its imputed orderings.
type Result struct {
	Name   string
	Schema *schema.Schema
	Rows   []schema.Tuple
}

type evaluator struct {
	reg     *funcs.Registry
	params  map[string]schema.Value
	trace   []pkt.Packet
	cat     *schema.Catalog
	streams map[string]*Result // lowercased query name -> result
}

// Eval runs the query texts, in order, over the recorded packet trace and
// returns the reference output of each. Later queries may read earlier
// queries' output streams by name. params supplies values for any declared
// query parameters.
func Eval(texts []string, params map[string]schema.Value, trace []pkt.Packet) ([]*Result, error) {
	cat := schema.NewCatalog()
	if err := pkt.RegisterBuiltins(cat); err != nil {
		return nil, fmt.Errorf("oracle: %w", err)
	}
	ev := &evaluator{
		reg:     funcs.Global,
		params:  params,
		trace:   trace,
		cat:     cat,
		streams: make(map[string]*Result),
	}
	results := make([]*Result, 0, len(texts))
	for i, text := range texts {
		q, err := gsql.ParseQuery(text)
		if err != nil {
			return nil, fmt.Errorf("oracle: query %d: %w", i+1, err)
		}
		name := q.Name()
		if name == "" {
			name = fmt.Sprintf("q%d", i+1)
		}
		res, err := ev.evalQuery(q)
		if err != nil {
			return nil, fmt.Errorf("oracle: query %s: %w", name, err)
		}
		res.Name = name
		res.Schema.Name = name
		ev.streams[strings.ToLower(name)] = res
		results = append(results, res)
	}
	return results, nil
}

func (ev *evaluator) evalQuery(q *gsql.Query) (*Result, error) {
	switch {
	case q.Kind == gsql.KindMerge:
		return ev.evalMerge(q)
	case len(q.Sources) == 2:
		return ev.evalJoin(q)
	case len(q.Sources) == 1:
		if len(q.GroupBy) > 0 || ev.hasAggregate(q) {
			return ev.evalAgg(q)
		}
		return ev.evalSelProj(q)
	}
	return nil, fmt.Errorf("unsupported query shape (%d sources)", len(q.Sources))
}

func (ev *evaluator) hasAggregate(q *gsql.Query) bool {
	found := false
	check := func(e gsql.Expr) {
		gsql.Walk(e, func(n gsql.Expr) bool {
			if call, ok := n.(*gsql.FuncCall); ok && ev.reg.IsAggregate(call.Name) {
				found = true
				return false
			}
			return true
		})
	}
	for _, it := range q.Select {
		check(it.Expr)
	}
	check(q.Having)
	return found
}

// source materializes one query input. For protocol sources, needNames
// restricts extraction to the referenced columns (mirroring the capture
// path's needCols); nil extracts every column (what the compiler's
// protocol wrapper projects for multi-source inputs). A packet is dropped
// when any needed extraction fails; unextracted slots stay NULL.
func (ev *evaluator) source(ref gsql.TableRef, needNames map[string]bool) (*schema.Schema, []schema.Tuple, error) {
	if ref.Interface == "" {
		if st, ok := ev.streams[strings.ToLower(ref.Name)]; ok {
			return st.Schema, st.Rows, nil
		}
	}
	sc, ok := ev.cat.Lookup(ref.Name)
	if !ok || sc.Kind != schema.KindProtocol {
		return nil, nil, fmt.Errorf("unknown source %s", ref.Name)
	}
	type extractor struct {
		slot int
		spec *pkt.FieldSpec
	}
	var exs []extractor
	for i := range sc.Cols {
		col := &sc.Cols[i]
		if needNames != nil && !needNames[strings.ToLower(col.Name)] {
			continue
		}
		spec, found := pkt.LookupInterp(col.Interp)
		if !found {
			return nil, nil, fmt.Errorf("%s.%s: interpretation function %q not registered", sc.Name, col.Name, col.Interp)
		}
		exs = append(exs, extractor{slot: i, spec: spec})
	}
	var rows []schema.Tuple
	for pi := range ev.trace {
		p := &ev.trace[pi]
		row := make(schema.Tuple, len(sc.Cols))
		ok := true
		for _, ex := range exs {
			v, extracted := ex.spec.Extract(p)
			if !extracted {
				ok = false
				break
			}
			row[ex.slot] = v
		}
		if ok {
			rows = append(rows, row)
		}
	}
	return sc, rows, nil
}

// referencedCols collects the distinct column names a single-source query
// mentions, for needCols-style protocol extraction. Names that do not
// resolve against the source schema (group-by aliases) are filtered by the
// caller through schema lookup in source().
func referencedCols(q *gsql.Query) map[string]bool {
	out := make(map[string]bool)
	add := func(e gsql.Expr) {
		gsql.Walk(e, func(n gsql.Expr) bool {
			if c, ok := n.(*gsql.ColRef); ok {
				out[strings.ToLower(c.Name)] = true
			}
			return true
		})
	}
	for _, it := range q.Select {
		add(it.Expr)
	}
	for _, g := range q.GroupBy {
		add(g.Expr)
	}
	add(q.Where)
	add(q.Having)
	return out
}

// outSchema derives output column names the way the compiler does:
// alias > column name > synthesized f<i>.
func outSchema(items []gsql.SelectItem, types []schema.Type, ords []schema.Ordering) *schema.Schema {
	out := &schema.Schema{Kind: schema.KindStream}
	used := make(map[string]bool)
	for i, item := range items {
		name := item.Alias
		if name == "" {
			if c, ok := item.Expr.(*gsql.ColRef); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("f%d", i)
			}
		}
		for used[strings.ToLower(name)] {
			name = fmt.Sprintf("%s_%d", name, i)
		}
		used[strings.ToLower(name)] = true
		col := schema.Column{Name: name, Type: types[i]}
		if ords != nil {
			col.Ordering = ords[i]
		}
		out.Cols = append(out.Cols, col)
	}
	return out
}

// evalSelProj: filter each materialized row through WHERE, project the
// select list; any discarded output expression (a partial function that
// produced no result) drops the row, as in the pipeline.
func (ev *evaluator) evalSelProj(q *gsql.Query) (*Result, error) {
	ref := q.Sources[0]
	sc, rows, err := ev.source(ref, referencedCols(q))
	if err != nil {
		return nil, err
	}
	comp := &exec.Compiler{Reg: ev.reg, Params: q.Params(), Resolve: exec.SchemaResolver(sc, ref.Binding())}
	var pred exec.Expr
	if q.Where != nil {
		if pred, err = comp.Compile(q.Where); err != nil {
			return nil, err
		}
	}
	outs := make([]exec.Expr, len(q.Select))
	types := make([]schema.Type, len(q.Select))
	ords := make([]schema.Ordering, len(q.Select))
	for i, it := range q.Select {
		if outs[i], err = comp.Compile(it.Expr); err != nil {
			return nil, err
		}
		types[i] = outs[i].Type()
		// Output streams must carry the imputed orderings so downstream
		// queries (merge, join, aggregation over this stream) see the same
		// source metadata the compiler's catalog records.
		ords[i] = core.ImputeOrdering(it.Expr, sc, ref.Binding())
		if ords[i].Kind == schema.OrderIncreasingInGroup {
			ords[i] = schema.NoOrder
		}
	}
	ctx, err := exec.NewCtx(comp.Handles, ev.params)
	if err != nil {
		return nil, err
	}
	var outRows []schema.Tuple
	for _, row := range rows {
		if pred != nil {
			pass, ok := exec.EvalPred(pred, row, ctx)
			if !ok || !pass {
				continue
			}
		}
		out := make(schema.Tuple, len(outs))
		keep := true
		for i, e := range outs {
			v, ok := e.Eval(row, ctx)
			if !ok {
				keep = false
				break
			}
			out[i] = v
		}
		if keep {
			outRows = append(outRows, out)
		}
	}
	return &Result{Schema: outSchema(q.Select, types, ords), Rows: outRows}, nil
}

// rewriteTree rebuilds an expression bottom-up, replacing any node for
// which f returns non-nil (mirrors the compiler's rewrite helper).
func rewriteTree(e gsql.Expr, f func(gsql.Expr) gsql.Expr) gsql.Expr {
	if e == nil {
		return nil
	}
	if r := f(e); r != nil {
		return r
	}
	switch n := e.(type) {
	case *gsql.BinaryExpr:
		return &gsql.BinaryExpr{Op: n.Op, L: rewriteTree(n.L, f), R: rewriteTree(n.R, f), At: n.At}
	case *gsql.UnaryExpr:
		return &gsql.UnaryExpr{Op: n.Op, X: rewriteTree(n.X, f), At: n.At}
	case *gsql.FuncCall:
		args := make([]gsql.Expr, len(n.Args))
		for i, a := range n.Args {
			args[i] = rewriteTree(a, f)
		}
		return &gsql.FuncCall{Name: n.Name, Args: args, At: n.At}
	}
	return e
}

type aggSlot struct {
	spec    *funcs.Aggregate
	arg     exec.Expr // nil for count(*)
	argType schema.Type
	params  []schema.Value // resolved compile-time literal parameters
}

// evalAgg: one full pass grouping every passing row, then HAVING +
// projection per group. No windows, no watermarks, no flushing — the
// whole trace is one batch. Output order is (ordered key, packed group
// key), the total order the pipeline's flush discipline converges to.
func (ev *evaluator) evalAgg(q *gsql.Query) (*Result, error) {
	ref := q.Sources[0]
	sc, rows, err := ev.source(ref, referencedCols(q))
	if err != nil {
		return nil, err
	}
	comp := &exec.Compiler{Reg: ev.reg, Params: q.Params(), Resolve: exec.SchemaResolver(sc, ref.Binding())}

	var pred exec.Expr
	if q.Where != nil {
		if pred, err = comp.Compile(q.Where); err != nil {
			return nil, err
		}
	}

	// Group key expressions, names, and the ordered-key pick (mirrors the
	// compiler: any increasing key wins, else first banded, else first
	// decreasing).
	groupExprs := make([]exec.Expr, len(q.GroupBy))
	groupNames := make([]string, len(q.GroupBy))
	groupText := make(map[string]int)
	ordGroup, desc := -1, false
	ordLocked := false
	for i, g := range q.GroupBy {
		if groupExprs[i], err = comp.Compile(g.Expr); err != nil {
			return nil, err
		}
		name := g.Alias
		if name == "" {
			if c, ok := g.Expr.(*gsql.ColRef); ok {
				name = c.Name
			} else {
				name = fmt.Sprintf("g%d", i)
			}
		}
		groupNames[i] = name
		groupText[g.Expr.String()] = i
		if ordLocked {
			continue
		}
		ord := core.ImputeOrdering(g.Expr, sc, ref.Binding())
		switch {
		case ord.Increasing():
			// First increasing key wins outright (the compiler stops its
			// ord-pick scan here).
			ordGroup, desc, ordLocked = i, false, true
		case ord.Kind == schema.OrderBandedIncreasing && ordGroup < 0:
			ordGroup, desc = i, false
		case ord.Decreasing() && ordGroup < 0:
			ordGroup, desc = i, true
		}
	}

	// Collect aggregate calls from the select list and HAVING, rewriting
	// both over the post-aggregation row [group values..., agg results...].
	post := &schema.Schema{Name: "post", Kind: schema.KindStream}
	for i, ge := range groupExprs {
		post.Cols = append(post.Cols, schema.Column{Name: groupNames[i], Type: ge.Type()})
	}
	aggKeys := make(map[string]int)
	var slots []aggSlot
	var walkErr error
	addAgg := func(call *gsql.FuncCall) (int, error) {
		canon := strings.ToLower(call.String())
		if slot, ok := aggKeys[canon]; ok {
			return slot, nil
		}
		agg, ok := ev.reg.Aggregate(call.Name)
		if !ok {
			return 0, fmt.Errorf("unknown aggregate %s", call.Name)
		}
		if len(agg.Params) == 0 && len(call.Args) != 1 {
			return 0, fmt.Errorf("%s takes exactly one argument", agg.Name)
		}
		if len(call.Args) < 1 || len(call.Args) > 1+len(agg.Params) {
			return 0, fmt.Errorf("%s takes 1 to %d arguments", agg.Name, 1+len(agg.Params))
		}
		sl := aggSlot{spec: agg, argType: schema.TNull}
		if _, star := call.Args[0].(*gsql.Star); star {
			if agg.TakesArg {
				return 0, fmt.Errorf("%s(*) is not valid; give an argument", agg.Name)
			}
		} else {
			e, err := comp.Compile(call.Args[0])
			if err != nil {
				return 0, err
			}
			sl.arg, sl.argType = e, e.Type()
		}
		// Trailing arguments are compile-time literal parameters (sketch
		// error bounds, quantile rank, ...), mirroring core's analyzer.
		var given []schema.Value
		for _, arg := range call.Args[1:] {
			c, ok := arg.(*gsql.Const)
			if !ok {
				return 0, fmt.Errorf("parameters of %s must be literals", agg.Name)
			}
			given = append(given, c.Val)
		}
		params, _, err := agg.ResolveParams(given, nil)
		if err != nil {
			return 0, fmt.Errorf("%s: %w", agg.Name, err)
		}
		sl.params = params
		slot := len(slots)
		slots = append(slots, sl)
		aggKeys[canon] = slot
		post.Cols = append(post.Cols, schema.Column{
			Name: fmt.Sprintf("%s_%d", strings.ToLower(call.Name), slot),
			Type: agg.Ret(sl.argType),
		})
		return slot, nil
	}
	rewrite := func(e gsql.Expr) gsql.Expr {
		collected := rewriteTree(e, func(x gsql.Expr) gsql.Expr {
			call, ok := x.(*gsql.FuncCall)
			if !ok || !ev.reg.IsAggregate(call.Name) || walkErr != nil {
				return nil
			}
			slot, err := addAgg(call)
			if err != nil {
				walkErr = err
				return x
			}
			return &gsql.ColRef{Name: post.Cols[len(groupExprs)+slot].Name, At: x.Pos()}
		})
		return rewriteTree(collected, func(x gsql.Expr) gsql.Expr {
			if i, ok := groupText[x.String()]; ok {
				return &gsql.ColRef{Name: groupNames[i], At: x.Pos()}
			}
			if c, ok := x.(*gsql.ColRef); ok {
				for i, gname := range groupNames {
					if strings.EqualFold(c.Name, gname) {
						return &gsql.ColRef{Name: groupNames[i], At: c.At}
					}
				}
			}
			return nil
		})
	}

	postComp := &exec.Compiler{
		Reg: ev.reg, Params: q.Params(),
		Resolve: exec.SchemaResolver(post, "post"),
		Handles: comp.Handles,
	}
	postSelect := make([]exec.Expr, len(q.Select))
	types := make([]schema.Type, len(q.Select))
	for i, it := range q.Select {
		re := rewrite(it.Expr)
		if walkErr != nil {
			return nil, walkErr
		}
		if postSelect[i], err = postComp.Compile(re); err != nil {
			return nil, fmt.Errorf("SELECT item %d over group row: %w", i+1, err)
		}
		types[i] = postSelect[i].Type()
	}
	var having exec.Expr
	if q.Having != nil {
		rh := rewrite(q.Having)
		if walkErr != nil {
			return nil, walkErr
		}
		if having, err = postComp.Compile(rh); err != nil {
			return nil, fmt.Errorf("HAVING over group row: %w", err)
		}
	}
	if len(slots) == 0 {
		return nil, fmt.Errorf("GROUP BY without any aggregate")
	}

	ctx, err := exec.NewCtx(postComp.Handles, ev.params)
	if err != nil {
		return nil, err
	}

	// The single naive pass: group every passing row over the whole trace.
	type group struct {
		gvals  schema.Tuple
		key    string
		states []funcs.AggState
	}
	groups := make(map[string]*group)
	for _, row := range rows {
		if pred != nil {
			pass, ok := exec.EvalPred(pred, row, ctx)
			if !ok || !pass {
				continue
			}
		}
		gvals := make(schema.Tuple, len(groupExprs))
		ok := true
		for i, ge := range groupExprs {
			v, evOK := ge.Eval(row, ctx)
			if !evOK {
				ok = false
				break
			}
			gvals[i] = v
		}
		if !ok {
			continue
		}
		if ordGroup >= 0 && gvals[ordGroup].IsNull() {
			continue // no ordered key: the pipeline discards such tuples
		}
		key := string(gvals.Pack(nil))
		g, found := groups[key]
		if !found {
			g = &group{gvals: gvals, key: key, states: make([]funcs.AggState, len(slots))}
			for i, sl := range slots {
				g.states[i] = sl.spec.NewState(sl.argType, sl.params)
			}
			groups[key] = g
		}
		for i, sl := range slots {
			if sl.arg == nil {
				g.states[i].Add(schema.Null)
				continue
			}
			if v, evOK := sl.arg.Eval(row, ctx); evOK {
				g.states[i].Add(v)
			}
		}
	}

	ordered := make([]*group, 0, len(groups))
	for _, g := range groups {
		ordered = append(ordered, g)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordGroup >= 0 {
			c := ordered[i].gvals[ordGroup].Compare(ordered[j].gvals[ordGroup])
			if c != 0 {
				if desc {
					return c > 0
				}
				return c < 0
			}
		}
		return ordered[i].key < ordered[j].key
	})

	var outRows []schema.Tuple
	for _, g := range ordered {
		postRow := make(schema.Tuple, len(groupExprs)+len(slots))
		copy(postRow, g.gvals)
		for i, s := range g.states {
			postRow[len(groupExprs)+i] = s.Result()
		}
		if having != nil {
			pass, ok := exec.EvalPred(having, postRow, ctx)
			if !ok || !pass {
				continue
			}
		}
		out := make(schema.Tuple, len(postSelect))
		keep := true
		for i, e := range postSelect {
			v, ok := e.Eval(postRow, ctx)
			if !ok {
				keep = false
				break
			}
			out[i] = v
		}
		if keep {
			outRows = append(outRows, out)
		}
	}
	return &Result{Schema: outSchema(q.Select, types, nil), Rows: outRows}, nil
}

// evalJoin: the full nested loop. Every (left, right) pair is tested
// against the complete WHERE clause — window constraints, equality keys,
// and residual predicates are not decomposed, so any pipeline bug in that
// decomposition (or in window eviction) shows up as a multiset mismatch.
func (ev *evaluator) evalJoin(q *gsql.Query) (*Result, error) {
	l, r := q.Sources[0], q.Sources[1]
	lsc, lrows, err := ev.source(l, nil)
	if err != nil {
		return nil, err
	}
	rsc, rrows, err := ev.source(r, nil)
	if err != nil {
		return nil, err
	}
	comp := &exec.Compiler{
		Reg: ev.reg, Params: q.Params(),
		Resolve: exec.JoinResolver(lsc, rsc, l.Binding(), r.Binding()),
	}
	var pred exec.Expr
	if q.Where != nil {
		if pred, err = comp.Compile(q.Where); err != nil {
			return nil, err
		}
	}
	outs := make([]exec.Expr, len(q.Select))
	types := make([]schema.Type, len(q.Select))
	for i, it := range q.Select {
		if outs[i], err = comp.Compile(it.Expr); err != nil {
			return nil, err
		}
		types[i] = outs[i].Type()
	}
	ctx, err := exec.NewCtx(comp.Handles, ev.params)
	if err != nil {
		return nil, err
	}
	var outRows []schema.Tuple
	combined := make(schema.Tuple, len(lsc.Cols)+len(rsc.Cols))
	for _, lr := range lrows {
		copy(combined, lr)
		for _, rr := range rrows {
			copy(combined[len(lsc.Cols):], rr)
			if pred != nil {
				pass, ok := exec.EvalPred(pred, combined, ctx)
				if !ok || !pass {
					continue
				}
			}
			out := make(schema.Tuple, len(outs))
			keep := true
			for i, e := range outs {
				v, ok := e.Eval(combined, ctx)
				if !ok {
					keep = false
					break
				}
				out[i] = v
			}
			if keep {
				outRows = append(outRows, out)
			}
		}
	}
	return &Result{Schema: outSchema(q.Select, types, nil), Rows: outRows}, nil
}

// evalMerge: interleave the inputs by the merge column (ties broken by
// source position), preserving each input's own order.
func (ev *evaluator) evalMerge(q *gsql.Query) (*Result, error) {
	if len(q.Sources) < 2 || len(q.MergeCols) != len(q.Sources) {
		return nil, fmt.Errorf("MERGE needs one merge column per source")
	}
	type input struct {
		sc   *schema.Schema
		rows []schema.Tuple
		col  int
	}
	inputs := make([]input, len(q.Sources))
	for i, ref := range q.Sources {
		sc, rows, err := ev.source(ref, nil)
		if err != nil {
			return nil, err
		}
		mc := q.MergeCols[i]
		if mc.Table != "" && !strings.EqualFold(mc.Table, ref.Binding()) {
			return nil, fmt.Errorf("merge column %s does not name source %s", mc, ref.Binding())
		}
		ci, col := sc.Col(mc.Name)
		if col == nil {
			return nil, fmt.Errorf("merge column %s not in source %s", mc.Name, ref.Binding())
		}
		inputs[i] = input{sc: sc, rows: rows, col: ci}
	}
	first := inputs[0]
	for i, in := range inputs[1:] {
		if len(in.sc.Cols) != len(first.sc.Cols) {
			return nil, fmt.Errorf("merge input %d width differs", i+2)
		}
		if in.col != first.col {
			return nil, fmt.Errorf("merge column position differs across inputs")
		}
	}

	out := &schema.Schema{Kind: schema.KindStream}
	for ci, col := range first.sc.Cols {
		ord := schema.NoOrder
		if ci == first.col {
			ord = first.sc.Cols[ci].Ordering
			for _, in := range inputs[1:] {
				ord = schema.Meet(ord, in.sc.Cols[in.col].Ordering)
			}
		}
		out.Cols = append(out.Cols, schema.Column{Name: col.Name, Type: col.Type, Ordering: ord})
	}

	// Optional WHERE: a selection over the merged stream (the compiler
	// distributes it into the branches; the reference result is the same
	// either way since σp(A ∪ B) = σp(A) ∪ σp(B)).
	var pred exec.Expr
	var ctx *exec.Ctx
	if q.Where != nil {
		comp := &exec.Compiler{Reg: ev.reg, Params: q.Params(), Resolve: exec.SchemaResolver(out, "")}
		var err error
		if pred, err = comp.Compile(q.Where); err != nil {
			return nil, err
		}
		if ctx, err = exec.NewCtx(comp.Handles, ev.params); err != nil {
			return nil, err
		}
	}

	idx := make([]int, len(inputs))
	var outRows []schema.Tuple
	for {
		pick := -1
		for i, in := range inputs {
			if idx[i] >= len(in.rows) {
				continue
			}
			if pick < 0 {
				pick = i
				continue
			}
			if in.rows[idx[i]][in.col].Compare(inputs[pick].rows[idx[pick]][inputs[pick].col]) < 0 {
				pick = i
			}
		}
		if pick < 0 {
			break
		}
		row := inputs[pick].rows[idx[pick]]
		idx[pick]++
		if pred != nil {
			if pass, ok := exec.EvalPred(pred, row, ctx); !ok || !pass {
				continue
			}
		}
		outRows = append(outRows, row)
	}
	return &Result{Schema: out, Rows: outRows}, nil
}
