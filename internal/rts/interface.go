package rts

import (
	"sync"
	"sync/atomic"

	"gigascope/internal/pkt"
)

// Interface is a symbolic packet source the run time system binds LFTAs
// to (paper §2.2: "the Protocol must be bound to an Interface — a symbolic
// name which the run time system can bind to a source of packets").
type Interface struct {
	name    string
	m       *Manager
	hbEvery uint64

	mu           sync.Mutex
	lftas        []*queryNode
	clock        uint64 // virtual time, microseconds
	lastHB       uint64
	hbAsked      atomic.Bool
	shutdownOnce sync.Once
}

type packetRef struct {
	pkt *pkt.Packet
}

// Name returns the interface's symbolic name.
func (it *Interface) Name() string { return it.name }

func (it *Interface) attach(qn *queryNode) {
	it.mu.Lock()
	defer it.mu.Unlock()
	it.lftas = append(it.lftas, qn)
}

// LFTACount returns the number of LFTAs linked to this interface.
func (it *Interface) LFTACount() int {
	it.mu.Lock()
	defer it.mu.Unlock()
	return len(it.lftas)
}

// Inject delivers one packet to every attached LFTA inline (the capture
// path). The packet timestamp advances the interface clock.
func (it *Interface) Inject(p *pkt.Packet) {
	it.mu.Lock()
	lftas := it.lftas
	if p.TS > it.clock {
		it.clock = p.TS
	}
	it.mu.Unlock()
	ref := &packetRef{pkt: p}
	for _, qn := range lftas {
		qn.pushPacket(ref)
	}
	it.maybeHeartbeat(false)
}

// AdvanceClock moves the virtual clock forward (idle time with no
// packets) and emits periodic or requested heartbeats.
func (it *Interface) AdvanceClock(usec uint64) {
	it.mu.Lock()
	if usec > it.clock {
		it.clock = usec
	}
	it.mu.Unlock()
	it.maybeHeartbeat(false)
}

func (it *Interface) requestHeartbeat() {
	it.hbAsked.Store(true)
	// Serve the request immediately from the current clock; a source
	// with no flowing packets would otherwise never answer.
	it.maybeHeartbeat(true)
}

func (it *Interface) maybeHeartbeat(forced bool) {
	it.mu.Lock()
	clock := it.clock
	due := clock >= it.lastHB+it.hbEvery
	if forced || it.hbAsked.Load() {
		due = clock > it.lastHB || forced
	}
	if !due || clock == 0 {
		it.mu.Unlock()
		return
	}
	it.lastHB = clock
	lftas := it.lftas
	it.mu.Unlock()
	it.hbAsked.Store(false)
	for _, qn := range lftas {
		qn.clockHeartbeat(clock)
	}
}

// shutdown flushes and closes every attached LFTA.
func (it *Interface) shutdown() {
	it.shutdownOnce.Do(func() {
		it.mu.Lock()
		lftas := it.lftas
		it.mu.Unlock()
		for _, qn := range lftas {
			qn.flushInline()
		}
	})
}
