package nic

import (
	"fmt"

	"gigascope/internal/pkt"
)

// Capability enumerates the NIC tiers the paper distinguishes (§3):
// dumb capture, BPF pre-filter + snap length, and a programmable NIC
// with its own run-time system hosting LFTAs.
type Capability uint8

const (
	// CapDumb delivers every packet in full.
	CapDumb Capability = iota
	// CapBPF evaluates a preliminary filter and truncates qualifying
	// packets to the snap length.
	CapBPF
	// CapRTS hosts LFTAs on the card; only result tuples cross to the
	// host (modeled by the capture package; functionally the device
	// behaves like CapBPF with the full LFTA as its filter).
	CapRTS
)

func (c Capability) String() string {
	switch c {
	case CapDumb:
		return "dumb"
	case CapBPF:
		return "bpf+snaplen"
	case CapRTS:
		return "programmable (NIC RTS)"
	}
	return "?"
}

// Device is a virtual NIC: a capability tier plus an installed filter
// program. Programs are installed before traffic starts, mirroring the
// static LFTA set.
type Device struct {
	cap       Capability
	prog      *Program
	delivered uint64
	filtered  uint64
}

// NewDevice builds a device of the given tier.
func NewDevice(c Capability) *Device { return &Device{cap: c} }

// Capability returns the device tier.
func (d *Device) Capability() Capability { return d.cap }

// Install loads a filter program. Dumb devices reject programs.
func (d *Device) Install(p *Program) error {
	if d.cap == CapDumb && !p.Empty() {
		return fmt.Errorf("nic: %s device cannot run a filter program", d.cap)
	}
	d.prog = p
	return nil
}

// Process runs one packet through the device: it reports whether the
// packet is delivered to the host and returns the (possibly snapped)
// capture. Dumb devices deliver everything in full.
func (d *Device) Process(p *pkt.Packet) (pkt.Packet, bool) {
	if d.cap == CapDumb || d.prog == nil {
		d.delivered++
		return *p, true
	}
	if !d.prog.Match(p) {
		d.filtered++
		return pkt.Packet{}, false
	}
	d.delivered++
	if d.prog.SnapLen > 0 {
		return p.Snap(d.prog.SnapLen), true
	}
	return *p, true
}

// ProcessBatch runs one poll window through the device, appending the
// delivered (possibly snapped) captures to out and returning it.
func (d *Device) ProcessBatch(ps []*pkt.Packet, out []pkt.Packet) []pkt.Packet {
	for _, p := range ps {
		if snapped, ok := d.Process(p); ok {
			out = append(out, snapped)
		}
	}
	return out
}

// Delivered and Filtered return the device counters.
func (d *Device) Delivered() uint64 { return d.delivered }

// Filtered returns the number of packets the program discarded.
func (d *Device) Filtered() uint64 { return d.filtered }
