package exec

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"gigascope/internal/schema"
)

// Batch-boundary equivalence property: a batch is exactly the concatenation
// of its messages, so ANY split of a message sequence into batches must
// yield byte-identical operator output and identical OrderChecker results
// vs. pushing the same sequence one message at a time. This pins both the
// generic PushBatch adapter and the native batch paths (SelProj, LFTAAgg)
// to per-message semantics.

// portMsg is one step of an input trace: a message arriving on a port.
type portMsg struct {
	port int
	m    Message
}

// renderMsgs canonically encodes an output sequence for byte comparison.
func renderMsgs(msgs []Message) string {
	var sb strings.Builder
	for _, m := range msgs {
		if m.IsHeartbeat() {
			fmt.Fprintf(&sb, "H %v\n", m.Bounds)
		} else {
			fmt.Fprintf(&sb, "T %v\n", m.Tuple)
		}
	}
	return sb.String()
}

// runPerMessage is the reference execution: one Push per message.
func runPerMessage(op Operator, seq []portMsg) ([]Message, error) {
	var out []Message
	emit := Collect(&out)
	for _, pm := range seq {
		if err := op.Push(pm.port, pm.m, emit); err != nil {
			return nil, err
		}
	}
	if err := op.FlushAll(emit); err != nil {
		return nil, err
	}
	return out, nil
}

// runBatched splits the trace into random single-port batches (cut points
// at every port change plus coin flips) and pushes them through PushBatch.
func runBatched(op Operator, seq []portMsg, r *rand.Rand) ([]Message, error) {
	var out []Message
	collect := func(b Batch) { out = append(out, b...) }
	for i := 0; i < len(seq); {
		j := i + 1
		for j < len(seq) && seq[j].port == seq[i].port && r.Intn(4) > 0 {
			j++
		}
		b := make(Batch, 0, j-i)
		for k := i; k < j; k++ {
			b = append(b, seq[k].m)
		}
		if err := PushBatch(op, seq[i].port, b, collect); err != nil {
			return nil, err
		}
		i = j
	}
	if err := FlushAllBatch(op, collect); err != nil {
		return nil, err
	}
	return out, nil
}

// orderResults runs an increasing OrderChecker over the first output column
// and returns the violation count (heartbeats excluded, as in the RTS).
func orderResults(msgs []Message) int {
	ch := schema.NewOrderChecker(schema.Ordering{Kind: schema.OrderIncreasing}, nil)
	violations := 0
	for _, m := range msgs {
		if m.IsHeartbeat() || len(m.Tuple) == 0 {
			continue
		}
		if err := ch.Observe(m.Tuple[0], m.Tuple); err != nil {
			violations++
		}
	}
	return violations
}

// hbQuiet builds a heartbeat over the quiet input schema: time >= ts.
func hbQuiet(ts uint64) Message {
	bounds := make(schema.Tuple, len(quietInSchema().Cols))
	bounds[0] = schema.MakeUint(ts)
	return HeartbeatMsg(bounds)
}

// genUnary produces a time-ordered trace of tuples with occasional
// heartbeats for the single-port operators.
func genUnary(r *rand.Rand, n int) []portMsg {
	var seq []portMsg
	ts := uint64(1)
	for i := 0; i < n; i++ {
		ts += uint64(r.Intn(20))
		if r.Intn(8) == 0 {
			seq = append(seq, portMsg{m: hbQuiet(ts)})
			continue
		}
		port := uint64(80)
		if r.Intn(3) == 0 {
			port = 443
		}
		seq = append(seq, portMsg{m: TupleMsg(mkRowQuiet(ts, port))})
	}
	return seq
}

// genTwoPort produces a trace for a binary operator: each port's stream is
// independently time-ordered, and the interleaving is random.
func genTwoPort(r *rand.Rand, n int, row func(port int, ts uint64) schema.Tuple, width [2]int) []portMsg {
	var seq []portMsg
	ts := [2]uint64{1, 1}
	for i := 0; i < n; i++ {
		p := r.Intn(2)
		ts[p] += uint64(r.Intn(3))
		if r.Intn(10) == 0 {
			bounds := make(schema.Tuple, width[p])
			bounds[0] = schema.MakeUint(ts[p])
			seq = append(seq, portMsg{port: p, m: HeartbeatMsg(bounds)})
			continue
		}
		seq = append(seq, portMsg{port: p, m: TupleMsg(row(p, ts[p]))})
	}
	return seq
}

func TestBatchBoundaryEquivalence(t *testing.T) {
	scenarios := []struct {
		name  string
		build func() Operator
		gen   func(r *rand.Rand) []portMsg
	}{
		{
			name: "selproj",
			build: func() Operator {
				s := quietInSchema()
				pred := quietCompile(s, "x", "destPort = 80")[0]
				outs := quietCompile(s, "x", "time", "destPort", "len*8")
				return NewSelProj(pred, outs, []bool{true, false, false}, nil, outSchema("time", "port", "bits"))
			},
			gen: func(r *rand.Rand) []portMsg { return genUnary(r, 200) },
		},
		{
			name: "lftaagg",
			// A small table forces collision evictions mid-stream, so the
			// equivalence also covers the eviction path.
			build: func() Operator { return buildLFTACountQuiet(16) },
			gen:   func(r *rand.Rand) []portMsg { return genUnary(r, 300) },
		},
		{
			name:  "agg",
			build: func() Operator { return buildDirectCountQuiet() },
			gen:   func(r *rand.Rand) []portMsg { return genUnary(r, 300) },
		},
		{
			name:  "join",
			build: func() Operator { return buildJoinQuiet(2, 2) },
			gen: func(r *rand.Rand) []portMsg {
				return genTwoPort(r, 300, func(port int, ts uint64) schema.Tuple {
					if port == 0 {
						return lrow(ts, ts%4)
					}
					return rrow(ts, ts%4, ts)
				}, [2]int{2, 3})
			},
		},
		{
			name:  "merge",
			build: func() Operator { op, _ := NewMerge([]int{0, 0}, mergeSchema()); return op },
			gen: func(r *rand.Rand) []portMsg {
				return genTwoPort(r, 300, func(port int, ts uint64) schema.Tuple {
					return mrow(ts, uint64(port))
				}, [2]int{2, 2})
			},
		},
	}
	for _, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			for seed := int64(0); seed < 20; seed++ {
				seq := sc.gen(rand.New(rand.NewSource(seed)))
				ref, err := runPerMessage(sc.build(), seq)
				if err != nil {
					t.Fatalf("seed %d: per-message run: %v", seed, err)
				}
				got, err := runBatched(sc.build(), seq, rand.New(rand.NewSource(seed+1000)))
				if err != nil {
					t.Fatalf("seed %d: batched run: %v", seed, err)
				}
				want, gotStr := renderMsgs(ref), renderMsgs(got)
				if gotStr != want {
					t.Fatalf("seed %d: batched output differs from per-message output\nper-message:\n%s\nbatched:\n%s",
						seed, want, gotStr)
				}
				if rw, rg := orderResults(ref), orderResults(got); rw != rg {
					t.Fatalf("seed %d: OrderChecker results differ: per-message %d violations, batched %d", seed, rw, rg)
				}
			}
		})
	}
}

// TestBatchExtremes pins the two degenerate splits: all-singleton batches
// (per-message through the batch entry point) and one batch per port run.
func TestBatchExtremes(t *testing.T) {
	seq := genUnary(rand.New(rand.NewSource(7)), 200)
	build := func() Operator { return buildLFTACountQuiet(16) }
	ref, err := runPerMessage(build(), seq)
	if err != nil {
		t.Fatal(err)
	}

	// Singletons.
	var single []Message
	op := build()
	collect := func(b Batch) { single = append(single, b...) }
	for _, pm := range seq {
		if err := PushBatch(op, pm.port, Batch{pm.m}, collect); err != nil {
			t.Fatal(err)
		}
	}
	if err := FlushAllBatch(op, collect); err != nil {
		t.Fatal(err)
	}
	if renderMsgs(single) != renderMsgs(ref) {
		t.Error("singleton batches differ from per-message output")
	}

	// One giant batch.
	var whole []Message
	op = build()
	collectW := func(b Batch) { whole = append(whole, b...) }
	all := make(Batch, 0, len(seq))
	for _, pm := range seq {
		all = append(all, pm.m)
	}
	if err := PushBatch(op, 0, all, collectW); err != nil {
		t.Fatal(err)
	}
	if err := FlushAllBatch(op, collectW); err != nil {
		t.Fatal(err)
	}
	if renderMsgs(whole) != renderMsgs(ref) {
		t.Error("single giant batch differs from per-message output")
	}
}

// TestPushBatchAdapterCollectsOnce verifies the generic fallback gathers a
// batch's output into one emission (operators without a native batch path
// still amortize the downstream ring crossing).
func TestPushBatchAdapterCollectsOnce(t *testing.T) {
	op, err := NewMerge([]int{0, 0}, mergeSchema())
	if err != nil {
		t.Fatal(err)
	}
	if _, native := Operator(op).(BatchOperator); native {
		t.Skip("merge grew a native batch path; adapter covered elsewhere")
	}
	// Fill port 1 first so pushing a batch on port 0 releases output.
	if err := op.Push(1, TupleMsg(mrow(100, 1)), func(Message) {}); err != nil {
		t.Fatal(err)
	}
	b := Batch{TupleMsg(mrow(1, 0)), TupleMsg(mrow(2, 0)), TupleMsg(mrow(3, 0))}
	emissions := 0
	var got []Message
	if err := PushBatch(op, 0, b, func(ob Batch) { emissions++; got = append(got, ob...) }); err != nil {
		t.Fatal(err)
	}
	if emissions != 1 {
		t.Errorf("adapter emitted %d batches, want 1", emissions)
	}
	if len(got) != 3 {
		t.Errorf("released %d messages, want 3 (%v)", len(got), got)
	}
}
