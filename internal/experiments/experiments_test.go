package experiments

import (
	"bytes"
	"strings"
	"testing"
)

func TestE1ShapeHolds(t *testing.T) {
	if raceDetectorEnabled {
		t.Skip("single-goroutine simulation; too slow under the race detector")
	}
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := E1(1.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	disk, pcap, host, nicr := rows[0].MaxRateMbps, rows[1].MaxRateMbps, rows[2].MaxRateMbps, rows[3].MaxRateMbps
	if !(disk < pcap && disk < host && nicr > pcap && nicr > host) {
		t.Errorf("ordering: disk=%.0f pcap=%.0f host=%.0f nic=%.0f", disk, pcap, host, nicr)
	}
	var buf bytes.Buffer
	PrintE1(&buf, rows)
	if !strings.Contains(buf.String(), "disk") {
		t.Errorf("print output: %s", buf.String())
	}
}

func TestE1CurveMonotoneLoss(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	pts, err := E1Curve(1, []float64{100, 300, 700})
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	// Within each configuration, loss must not decrease with load.
	for i := 1; i < len(pts); i++ {
		if pts[i].Config == pts[i-1].Config && pts[i].LossPct < pts[i-1].LossPct-0.5 {
			t.Errorf("loss decreased with load: %+v -> %+v", pts[i-1], pts[i])
		}
	}
	var buf bytes.Buffer
	PrintE1Curve(&buf, pts)
	if buf.Len() == 0 {
		t.Error("empty curve output")
	}
}

func TestE2SmallTableStillReduces(t *testing.T) {
	rows, err := E2([]int{64, 4096}, []int{100, 5000}, 30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %v", rows)
	}
	for _, r := range rows {
		if r.In != 30_000 {
			t.Errorf("in = %d", r.In)
		}
		// The §3 claim: even a small table achieves substantial early
		// reduction thanks to temporal locality.
		if r.Reduction < 2 {
			t.Errorf("table %d, flows %d: reduction %.1fx too small", r.TableSize, r.Flows, r.Reduction)
		}
	}
	// More slots => fewer evictions for the same flow count.
	if rows[1].Evicted > rows[0].Evicted {
		t.Errorf("bigger table evicted more: %d vs %d", rows[1].Evicted, rows[0].Evicted)
	}
	var buf bytes.Buffer
	PrintE2(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}

func TestE3HeartbeatsBoundBuffering(t *testing.T) {
	rows, err := E3(5000, 100_000)
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[E3Policy]E3Row{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
	}
	none, periodic, demand := byPolicy[E3None], byPolicy[E3Periodic], byPolicy[E3OnDemand]
	// Without heartbeats the merge buffers everything and releases
	// nothing (paper: "we are likely to overflow the merge buffers").
	if none.Released != 0 || none.MaxBuffered < 5000 {
		t.Errorf("no-heartbeat row = %+v", none)
	}
	// Heartbeats bound the buffer and release almost everything.
	if periodic.MaxBuffered >= none.MaxBuffered/10 {
		t.Errorf("periodic buffered %d, not bounded", periodic.MaxBuffered)
	}
	if periodic.Released < 4000 {
		t.Errorf("periodic released %d", periodic.Released)
	}
	if demand.MaxBuffered > 4 {
		t.Errorf("on-demand buffered %d, want tiny", demand.MaxBuffered)
	}
	if demand.Released < 4900 {
		t.Errorf("on-demand released %d", demand.Released)
	}
	var buf bytes.Buffer
	PrintE3(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}

func TestE4SplitReducesBoundaryTraffic(t *testing.T) {
	rows, err := E4(40_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}
	split, mono := rows[0], rows[1]
	if split.Results != mono.Results {
		t.Errorf("results differ: %d vs %d", split.Results, mono.Results)
	}
	// Splitting must reduce boundary traffic substantially.
	if split.BoundaryTuples*3 > mono.BoundaryTuples {
		t.Errorf("split boundary %d vs monolithic %d: <3x reduction",
			split.BoundaryTuples, mono.BoundaryTuples)
	}
	var buf bytes.Buffer
	PrintE4(&buf, rows)
	if !strings.Contains(buf.String(), "reduction") {
		t.Errorf("output: %s", buf.String())
	}
}

func TestE5RunsTheFullStack(t *testing.T) {
	row, err := E5(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if row.Packets != 60_000 || row.PktsPerSecond <= 0 {
		t.Errorf("row = %+v", row)
	}
	var buf bytes.Buffer
	PrintE5(&buf, row)
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}

func TestE6StateBounded(t *testing.T) {
	joins, err := E6Join(30_000, []int64{0, 2, 8})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range joins {
		// Buffered state must be tiny relative to the stream, and grow
		// with the window.
		if r.PeakBuffer > 500 {
			t.Errorf("slack %d: peak buffer %d not bounded", r.WindowSlack, r.PeakBuffer)
		}
		if i > 0 && r.PeakBuffer < joins[i-1].PeakBuffer {
			t.Errorf("buffer did not grow with window: %+v after %+v", r, joins[i-1])
		}
		if r.Matches == 0 {
			t.Errorf("slack %d: no matches", r.WindowSlack)
		}
	}
	agg, err := E6Agg(20_000)
	if err != nil {
		t.Fatal(err)
	}
	if !agg.Exact {
		t.Error("banded aggregation inexact")
	}
	if agg.PeakGroups > 64 {
		t.Errorf("peak open groups = %d, not bounded", agg.PeakGroups)
	}
	var buf bytes.Buffer
	PrintE6(&buf, joins, agg)
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}

func TestE7PushdownReducesHostLoad(t *testing.T) {
	rows, err := E7(20_000, []float64{0.01, 0.2, 1.0}, 54)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.DumbPkts != r.Offered {
			t.Errorf("dumb NIC dropped packets: %+v", r)
		}
		if r.HostPkts > r.Offered {
			t.Errorf("host pkts exceed offered: %+v", r)
		}
		// Snap length keeps host bytes far below wire bytes even at 100%
		// selectivity.
		if r.HostBytes >= r.DumbBytes/2 {
			t.Errorf("selectivity %.0f%%: host bytes %d vs dumb %d",
				r.SelectivityPct, r.HostBytes, r.DumbBytes)
		}
	}
	// Fewer matching packets => fewer host packets.
	if rows[0].HostPkts >= rows[2].HostPkts {
		t.Errorf("host pkts not increasing with selectivity: %v", rows)
	}
	var buf bytes.Buffer
	PrintE7(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}

func TestE8LossStaysZeroUntilKnee(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := E8(1, []float64{100, 300, 450, 700, 900})
	if err != nil {
		t.Fatal(err)
	}
	// Below the knee: essentially lossless despite the regex HFTA.
	for _, r := range rows[:2] {
		if r.LossPct > 0.5 {
			t.Errorf("loss %.2f%% at %v Mb/s, want ~0", r.LossPct, r.TotalMbps)
		}
	}
	// Past the knee: heavy loss.
	last := rows[len(rows)-1]
	if last.LossPct < 10 {
		t.Errorf("loss %.2f%% at %v Mb/s, want heavy", last.LossPct, last.TotalMbps)
	}
	var buf bytes.Buffer
	PrintE8(&buf, rows)
	if buf.Len() == 0 {
		t.Error("empty output")
	}
}

func TestE10ControllerReducesRingDrops(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := E10(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Controller || !rows[1].Controller {
		t.Fatalf("rows = %+v", rows)
	}
	off, on := rows[0], rows[1]
	// The uncontrolled run saturates and sheds heavily for its whole
	// duration; the controlled run stops dropping once the first throttle
	// decisions land.
	if off.RingDrops == 0 {
		t.Fatal("baseline never saturated the ring — the workload is not an overload")
	}
	if on.RingDrops*2 >= off.RingDrops {
		t.Errorf("controller did not measurably reduce drops: on=%d off=%d",
			on.RingDrops, off.RingDrops)
	}
	if on.Decisions == 0 || on.Throttled == 0 {
		t.Errorf("controller made no throttled decisions: %+v", on)
	}
	if on.MinRate >= 1.0 || on.FinalRate > 1.0 {
		t.Errorf("rates unmoved: %+v", on)
	}
	// Shedding trades output for survival, never more output than baseline.
	if on.OutputTuples == 0 || on.OutputTuples > off.OutputTuples {
		t.Errorf("output tuples: on=%d off=%d", on.OutputTuples, off.OutputTuples)
	}
	var buf bytes.Buffer
	PrintE10(&buf, rows)
	if !strings.Contains(buf.String(), "reduction") {
		t.Errorf("print output: %s", buf.String())
	}
}

func TestE11SketchMemoryAndDemotion(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	rows, err := E11([]int{10_000, 50_000})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		// The sketched twin must answer within its declared error at a
		// fraction of the exact aggregate-table memory (acceptance: >=10x).
		if r.ExactDistinct != uint64(r.Flows) {
			t.Errorf("flows=%d: exact distinct = %d", r.Flows, r.ExactDistinct)
		}
		if r.DistinctErrPct > 8 || r.P90ErrPct > 6 {
			t.Errorf("flows=%d: sketch error out of bounds: %+v", r.Flows, r)
		}
		if r.MemRatio < 10 {
			t.Errorf("flows=%d: memory ratio %.1fx < 10x", r.Flows, r.MemRatio)
		}
	}
	// The sketch footprint must not grow with cardinality.
	if rows[1].SketchBytes > rows[0].SketchBytes*2 {
		t.Errorf("sketch memory grew with flows: %d -> %d",
			rows[0].SketchBytes, rows[1].SketchBytes)
	}

	ctrl, err := E11Control(60_000)
	if err != nil {
		t.Fatal(err)
	}
	if !ctrl.FirstActionEased {
		t.Errorf("first overload action was not a full-rate demotion: %+v", ctrl.Decisions)
	}
	if ctrl.MinRate >= 1.0 {
		t.Errorf("rate never cut after demotion: %+v", ctrl)
	}
	var buf bytes.Buffer
	PrintE11(&buf, rows, ctrl)
	if !strings.Contains(buf.String(), "demote") {
		t.Errorf("print output: %s", buf.String())
	}
}

func TestE12SharingReducesPredicateWork(t *testing.T) {
	rows, identical, err := E12(30_000)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Sharing || !rows[1].Sharing {
		t.Fatalf("rows = %+v", rows)
	}
	off, on := rows[0], rows[1]
	// Acceptance: sharing is semantically invisible.
	if !identical {
		t.Error("outputs differ between sharing modes")
	}
	if off.OutputRows == 0 {
		t.Error("workload produced no output rows; the comparison is vacuous")
	}
	// Five HFTA variants per template fold into one LFTA each.
	if on.LFTANodes != e12Templates {
		t.Errorf("sharing on instantiated %d LFTAs, want %d", on.LFTANodes, e12Templates)
	}
	if off.LFTANodes != e12Templates*e12Variants {
		t.Errorf("sharing off instantiated %d LFTAs, want %d", off.LFTANodes, e12Templates*e12Variants)
	}
	// Acceptance: >=2x reduction in capture-path predicate evaluations at
	// 50 simultaneous queries.
	if on.PredEvals == 0 || off.PredEvals < 2*on.PredEvals {
		t.Errorf("predicate-eval reduction %.2fx < 2x (off=%d on=%d)",
			float64(off.PredEvals)/float64(on.PredEvals), off.PredEvals, on.PredEvals)
	}
	if on.PrefilterGroups == 0 || on.PrefilterTerms == 0 {
		t.Errorf("no prefilter installed with sharing on: %+v", on)
	}
	var buf bytes.Buffer
	PrintE12(&buf, rows, identical)
	if !strings.Contains(buf.String(), "reduction") {
		t.Errorf("print output: %s", buf.String())
	}
}
