package funcs

import (
	"bytes"
	"fmt"
	"regexp"

	"gigascope/internal/lpm"
	"gigascope/internal/schema"
)

// Built-in scalar functions. The two from the paper — getlpmid (longest
// prefix matching against a routing-table file, §2.2) and regular
// expression matching over packet payloads (§4) — plus casts and string
// helpers network analysts commonly need.

// SampleFraction reports whether v falls inside the sampled fraction
// `rate` of the value space under a fixed FNV-1a hash. Exported so load
// models (the capture cost simulation in E10) can mirror exactly what a
// rebound samplehash predicate keeps. Monotone in rate: the set kept at
// rate r is a subset of the set kept at any r' > r.
func SampleFraction(v schema.Value, rate float64) bool {
	if rate >= 1 {
		return true
	}
	if rate <= 0 {
		return false
	}
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	var h uint64 = offset64
	switch v.Type {
	case schema.TString:
		for _, b := range v.B {
			h = (h ^ uint64(b)) * prime64
		}
	default:
		u := v.U
		if v.Type == schema.TFloat {
			u = uint64(v.F)
		}
		for i := 0; i < 8; i++ {
			h = (h ^ (u & 0xff)) * prime64
			u >>= 8
		}
	}
	// Top bits are the best-mixed; compare against the rate threshold in
	// 1/2^32 units.
	return float64(h>>32) < rate*float64(1<<32)
}

func registerBuiltinScalars(r *Registry) {
	must := func(err error) {
		if err != nil {
			panic(err)
		}
	}

	// getlpmid(ip, 'prefixes.tbl') -> uint peer id. The second parameter
	// is pass-by-handle: the file is loaded into an LPM trie once at
	// instantiation. Partial: an unmatched address discards the tuple,
	// acting as a foreign-key join against the prefix table.
	must(r.RegisterScalar(&Scalar{
		Name:      "getlpmid",
		Args:      []schema.Type{schema.TIP, schema.TString},
		Ret:       schema.TUint,
		Cost:      CostCheap,
		Partial:   true,
		HandleArg: 1,
		MakeHandle: func(v schema.Value) (Handle, error) {
			return lpm.Load(v.Str())
		},
		Eval: func(args []schema.Value, handle Handle) (schema.Value, bool) {
			id, ok := handle.(*lpm.Table).Lookup(args[0].IP())
			if !ok {
				return schema.Null, false
			}
			return schema.MakeUint(id), true
		},
	}))

	// str_regex_match(s, 'pattern') -> bool. The pattern is pass-by-handle
	// (compiled once). Expensive: never runs in an LFTA (paper §4).
	must(r.RegisterScalar(&Scalar{
		Name:      "str_regex_match",
		Args:      []schema.Type{schema.TString, schema.TString},
		Ret:       schema.TBool,
		Cost:      CostExpensive,
		HandleArg: 1,
		MakeHandle: func(v schema.Value) (Handle, error) {
			re, err := regexp.Compile(v.Str())
			if err != nil {
				return nil, fmt.Errorf("funcs: str_regex_match: %w", err)
			}
			return re, nil
		},
		Eval: func(args []schema.Value, handle Handle) (schema.Value, bool) {
			return schema.MakeBool(handle.(*regexp.Regexp).Match(args[0].Bytes())), true
		},
	}))

	// str_find_substr(s, sub) -> bool. Expensive (scans payload bytes).
	must(r.RegisterScalar(&Scalar{
		Name:      "str_find_substr",
		Args:      []schema.Type{schema.TString, schema.TString},
		Ret:       schema.TBool,
		Cost:      CostExpensive,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			return schema.MakeBool(bytes.Contains(args[0].Bytes(), args[1].Bytes())), true
		},
	}))

	// str_prefix(s, p) -> bool. Cheap: bounded work on the first bytes.
	must(r.RegisterScalar(&Scalar{
		Name:      "str_prefix",
		Args:      []schema.Type{schema.TString, schema.TString},
		Ret:       schema.TBool,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			return schema.MakeBool(bytes.HasPrefix(args[0].Bytes(), args[1].Bytes())), true
		},
	}))

	// str_len(s) -> uint.
	must(r.RegisterScalar(&Scalar{
		Name:      "str_len",
		Args:      []schema.Type{schema.TString},
		Ret:       schema.TUint,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			return schema.MakeUint(uint64(len(args[0].Bytes()))), true
		},
	}))

	// Casts.
	must(r.RegisterScalar(&Scalar{
		Name:      "to_uint",
		Args:      []schema.Type{schema.TNull},
		Ret:       schema.TUint,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			v := args[0]
			switch v.Type {
			case schema.TFloat:
				return schema.MakeUint(uint64(v.F)), true
			case schema.TNull:
				return schema.Null, false
			}
			return schema.MakeUint(v.U), true
		},
	}))
	must(r.RegisterScalar(&Scalar{
		Name:      "to_float",
		Args:      []schema.Type{schema.TNull},
		Ret:       schema.TFloat,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			if args[0].Type == schema.TNull {
				return schema.Null, false
			}
			return schema.MakeFloat(args[0].Float()), true
		},
	}))

	// subnet(ip, masklen) -> ip. Cheap prefix truncation for grouping
	// traffic by subnet in LFTAs.
	must(r.RegisterScalar(&Scalar{
		Name:      "subnet",
		Args:      []schema.Type{schema.TIP, schema.TUint},
		Ret:       schema.TIP,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			ml := args[1].Uint()
			if ml > 32 {
				return schema.Null, false
			}
			if ml == 0 {
				return schema.MakeIP(0), true
			}
			mask := ^uint32(0) << (32 - ml)
			return schema.MakeIP(args[0].IP() & mask), true
		},
	}))

	// samplehash(x, rate) -> bool. Deterministic hash-based sampling (paper
	// §4: load shedding by "setting the sampling rate of some of the
	// queries"): true for the fraction `rate` of the value space, so a
	// WHERE samplehash(srcIP, $rate) predicate thins a stream reproducibly
	// — the same value always samples the same way at a given rate, and
	// raising the rate strictly grows the kept set (no resample churn when
	// the overload controller adjusts the parameter). Cheap: LFTA-safe.
	must(r.RegisterScalar(&Scalar{
		Name:      "samplehash",
		Args:      []schema.Type{schema.TNull, schema.TFloat},
		Ret:       schema.TBool,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			return schema.MakeBool(SampleFraction(args[0], args[1].Float())), true
		},
	}))

	// ip_in_net(ip, net, mask) -> bool. Cheap subnet test usable in LFTAs
	// and pushable to BPF.
	must(r.RegisterScalar(&Scalar{
		Name:      "ip_in_net",
		Args:      []schema.Type{schema.TIP, schema.TIP, schema.TIP},
		Ret:       schema.TBool,
		Cost:      CostCheap,
		HandleArg: -1,
		Eval: func(args []schema.Value, _ Handle) (schema.Value, bool) {
			ip, net, mask := args[0].IP(), args[1].IP(), args[2].IP()
			return schema.MakeBool(ip&mask == net&mask), true
		},
	}))
}

func init() {
	registerBuiltinScalars(Global)
	registerBuiltinAggregates(Global)
	registerSketchAggregates(Global)
}
