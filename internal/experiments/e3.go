package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/exec"
	"gigascope/internal/schema"
)

// E3: unblocking the merge operator with heartbeats (paper §3): "If
// tcpdest0 produces 100 Mbytes of data per second while tcpdest1 produces
// one tuple per minute, we are likely to overflow the merge buffers ...
// we use a mechanism ... of injecting ordering update tokens into the
// query stream", either periodically or on demand.
//
// A fast stream and a (nearly) silent stream feed a merge; we measure the
// buffer high-water mark and the tuples released under three policies:
// no heartbeats, periodic heartbeats, and on-demand heartbeats.

// E3Policy selects the heartbeat policy.
type E3Policy uint8

const (
	E3None E3Policy = iota
	E3Periodic
	E3OnDemand
	// E3Bounded runs without heartbeats but with a bounded merge buffer:
	// overflow emits the oldest tuple out of order instead of growing the
	// queue (or losing the tuple). The disorder shows up in the Reordered
	// counter; Dropped stays zero — nothing is lost, only order degrades.
	E3Bounded
)

func (p E3Policy) String() string {
	switch p {
	case E3None:
		return "no heartbeats"
	case E3Periodic:
		return "periodic heartbeats"
	case E3OnDemand:
		return "on-demand heartbeats"
	case E3Bounded:
		return "bounded buffer, no HB"
	}
	return "?"
}

// e3BoundedBuffer is the merge MaxBuffer used by the E3Bounded policy.
const e3BoundedBuffer = 1024

// E3Row is one policy's outcome.
type E3Row struct {
	Policy      E3Policy
	FastTuples  int
	Released    int    // tuples emitted before end-of-stream flush
	MaxBuffered int    // merge buffer high-water mark
	Heartbeats  int    // heartbeats injected on the slow input
	Reordered   uint64 // tuples emitted out of order to bound the buffer
	Dropped     uint64 // tuples actually lost (must stay 0: degradation ≠ loss)
}

// E3 feeds fastTuples tuples (1 per virtual ms) on port 0 while port 1
// stays silent, under the given policy. periodicUsec is the heartbeat
// interval for E3Periodic.
func E3(fastTuples int, periodicUsec uint64) ([]E3Row, error) {
	var rows []E3Row
	for _, policy := range []E3Policy{E3None, E3Periodic, E3OnDemand, E3Bounded} {
		row, err := e3Run(policy, fastTuples, periodicUsec)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func e3Run(policy E3Policy, fastTuples int, periodicUsec uint64) (E3Row, error) {
	out := &schema.Schema{Name: "m", Kind: schema.KindStream, Cols: []schema.Column{
		{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
		{Name: "v", Type: schema.TUint},
	}}
	m, err := exec.NewMerge([]int{0, 0}, out)
	if err != nil {
		return E3Row{}, err
	}
	if policy == E3Bounded {
		m.MaxBuffer = e3BoundedBuffer
	}
	row := E3Row{Policy: policy, FastTuples: fastTuples}
	maxBuf := 0
	released := 0
	emit := func(msg exec.Message) {
		if !msg.IsHeartbeat() {
			released++
		}
	}
	demand := false
	m.OnBlocked = func(port int) {
		if port == 1 {
			demand = true
		}
	}
	lastHB := uint64(0)
	for i := 0; i < fastTuples; i++ {
		ts := uint64(i) * 1000 // one tuple per virtual millisecond
		tup := schema.Tuple{schema.MakeUint(ts), schema.MakeUint(uint64(i))}
		if err := m.Push(0, exec.TupleMsg(tup), emit); err != nil {
			return E3Row{}, err
		}
		switch policy {
		case E3Periodic:
			if ts >= lastHB+periodicUsec {
				lastHB = ts
				row.Heartbeats++
				m.Push(1, exec.HeartbeatMsg(schema.Tuple{schema.MakeUint(ts), schema.Null}), emit)
			}
		case E3OnDemand:
			if demand {
				demand = false
				row.Heartbeats++
				m.Push(1, exec.HeartbeatMsg(schema.Tuple{schema.MakeUint(ts), schema.Null}), emit)
			}
		}
		if b := m.MaxBuffered(); b > maxBuf {
			maxBuf = b
		}
	}
	row.Released = released
	row.MaxBuffered = maxBuf
	st := m.Stats()
	row.Reordered = st.Reordered
	row.Dropped = st.Dropped
	return row, nil
}

// PrintE3 renders the comparison.
func PrintE3(w io.Writer, rows []E3Row) {
	fmt.Fprintln(w, "E3: merge with a silent input — heartbeat unblocking (§3)")
	fmt.Fprintf(w, "  %-22s %10s %10s %12s %12s %10s %8s\n",
		"policy", "fast in", "released", "max buffered", "heartbeats", "reordered", "dropped")
	for _, r := range rows {
		fmt.Fprintf(w, "  %-22s %10d %10d %12d %12d %10d %8d\n",
			r.Policy, r.FastTuples, r.Released, r.MaxBuffered, r.Heartbeats, r.Reordered, r.Dropped)
	}
}
