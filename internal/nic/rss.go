package nic

import (
	"gigascope/internal/pkt"
)

// Receive-side scaling (RSS): modern NICs hash each packet's flow tuple
// and steer it to one of N host receive queues, so each core runs the
// protocol stack (for Gigascope: the LFTA set) over a disjoint slice of
// the traffic. This is the multicore analogue of the paper's §5 move —
// "put the LFTAs on the NIC" — with the NIC's contribution reduced to
// the flow hash and the per-queue delivery.
//
// The hash covers src/dst IPv4 address, protocol, and (for unfragmented
// TCP/UDP) the port pair, so every packet of a flow lands on the same
// shard and per-flow ordering survives sharding. Fragments hash on the
// 3-tuple only — all fragments of a datagram, including the first, take
// the same shard. Non-IP traffic steers to shard 0.

const etherTypeIPv4 = 0x0800

// FlowHash returns the RSS hash of the packet's flow tuple. ok reports
// whether the packet carried a hashable IPv4 header; non-IP packets
// return (0, false) and are steered to shard 0.
func FlowHash(p *pkt.Packet) (uint32, bool) {
	et, ok := p.U16(12)
	if !ok || et != etherTypeIPv4 {
		return 0, false
	}
	ver, ok := p.U8(pkt.EthHeaderLen)
	if !ok || ver>>4 != 4 {
		return 0, false
	}
	src, ok := p.U32(pkt.EthHeaderLen + 12)
	if !ok {
		return 0, false
	}
	dst, ok := p.U32(pkt.EthHeaderLen + 16)
	if !ok {
		return 0, false
	}
	proto, _ := p.IPProto()

	// FNV-1a over the flow tuple.
	const (
		offset = 2166136261
		prime  = 16777619
	)
	h := uint32(offset)
	mix := func(v uint32) {
		for shift := 24; shift >= 0; shift -= 8 {
			h ^= (v >> uint(shift)) & 0xff
			h *= prime
		}
	}
	mix(uint32(src))
	mix(uint32(dst))
	h ^= uint32(proto & 0xff)
	h *= prime

	// Ports participate only for unfragmented TCP/UDP: later fragments
	// carry no transport header, so hashing the first fragment's ports
	// would scatter a datagram across shards.
	if frag, ok := p.U16(pkt.EthHeaderLen + 6); ok && frag&0x3fff == 0 &&
		(proto == pkt.ProtoTCP || proto == pkt.ProtoUDP) {
		if base, ok := p.L4Offset(); ok {
			if sport, ok := p.U16(base); ok {
				if dport, ok := p.U16(base + 2); ok {
					mix(uint32(sport)<<16 | uint32(dport))
				}
			}
		}
	}
	return h, true
}

// Shard returns the shard index FlowHash steers the packet to, out of n.
func Shard(p *pkt.Packet, n int) int {
	if n <= 1 {
		return 0
	}
	h, ok := FlowHash(p)
	if !ok {
		return 0
	}
	return int(h % uint32(n))
}

// Steer partitions one poll window across n shards, preserving arrival
// order within each shard. The out slices are reused when non-nil (each
// is truncated first); Steer returns out extended to n slices.
func Steer(ps []*pkt.Packet, n int, out [][]*pkt.Packet) [][]*pkt.Packet {
	for len(out) < n {
		out = append(out, nil)
	}
	out = out[:n]
	for i := range out {
		out[i] = out[i][:0]
	}
	for _, p := range ps {
		s := Shard(p, n)
		out[s] = append(out[s], p)
	}
	return out
}
