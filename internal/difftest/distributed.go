package difftest

import (
	"fmt"
	"strings"
	"sync"

	"gigascope"
	"gigascope/internal/core"
	"gigascope/internal/schema"
)

// Distributed execution axis: the same cases run through the placement
// coordinator across N in-process Systems wired over real unix sockets,
// and the sink's output is compared against the oracle exactly like the
// single-process cells. Config.Distributed selects one of three topology
// presets (every generated query captures on eth0):
//
//	2 nodes  whole capture on one host, sink on the other — the basic
//	         LFTA/HFTA wire split
//	3 nodes  eth0 capture split across two hosts plus a sink — exercises
//	         partition-renamed LFTAs and reunification
//	4 nodes  capture split with starved capture budgets plus two
//	         equal-budget HFTA-tier hosts — forces the balancer to spread
//	         HFTAs and chain wire hops (capture -> tier -> sink)

// DistTopology returns the preset topology source for nodes hosts.
func DistTopology(nodes int) (string, error) {
	switch nodes {
	case 2:
		return `
node cap { cpu 400  capture eth0  uplink agg }
node agg { cpu 4000  sink }
`, nil
	case 3:
		return `
node capA { cpu 400  capture eth0[0/2]  uplink agg }
node capB { cpu 400  capture eth0[1/2]  uplink agg }
node agg  { cpu 4000  sink }
`, nil
	case 4:
		return `
node capA { cpu 20  capture eth0[0/2]  uplink t1 }
node capB { cpu 20  capture eth0[1/2]  uplink t1 }
node t1   { cpu 2000  uplink agg }
node agg  { cpu 2000  sink }
`, nil
	}
	return "", fmt.Errorf("difftest: no %d-node topology preset (have 2, 3, 4)", nodes)
}

// RunDistributed is RunPipeline's multi-node twin: it places the case's
// queries across Config.Distributed hosts, runs them as a Cluster, and
// collects every query's output at the sink. The same harness guards
// apply — shedding, quarantine, or reorder on ANY host invalidates the
// comparison — plus a wire guard: a fault-free cluster must finish with
// zero reconnects and zero sequence gaps.
func RunDistributed(c *Case, cfg Config) (*PipelineRun, error) {
	topoSrc, err := DistTopology(cfg.Distributed)
	if err != nil {
		return nil, err
	}
	topo, err := gigascope.ParseTopology(topoSrc)
	if err != nil {
		return nil, fmt.Errorf("difftest: topology preset: %w", err)
	}
	sysCfg := gigascope.Config{
		RingSize:        8192,
		MaxBatch:        cfg.MaxBatch,
		InboxDepth:      4096,
		HeartbeatUsec:   250_000,
		Shards:          cfg.Shards,
		DisableColumnar: !cfg.Columnar,
	}
	if cfg.Faults {
		sysCfg.QuarantineRestartUsec = 50_000
	}

	// Per-query parameter bindings, keyed the way ClusterConfig wants them.
	perQuery := make(map[string]map[string]schema.Value)
	var names []string
	for _, text := range c.Queries {
		name, p, err := queryParams(text, c.Params)
		if err != nil {
			return nil, err
		}
		if p != nil {
			perQuery[name] = p
		}
		names = append(names, name)
	}

	cl, err := gigascope.NewCluster(gigascope.ClusterConfig{
		Topology: topo,
		Script:   strings.Join(c.Queries, ";\n"),
		Params:   perQuery,
		Seed:     c.Seed,
		System:   sysCfg,
	})
	if err != nil {
		return nil, fmt.Errorf("difftest: cluster: %w", err)
	}
	if err := cl.Start(); err != nil {
		return nil, fmt.Errorf("difftest: cluster start: %w", err)
	}

	run := &PipelineRun{
		Rows:  make(map[string][]schema.Tuple, len(names)),
		Plans: make(map[string]*core.CompiledQuery, len(names)),
	}
	for _, name := range names {
		if plan, ok := cl.Plan(name); ok {
			run.Plans[name] = plan
		}
	}

	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range names {
		sub, err := cl.Subscribe(name, 4096)
		if err != nil {
			cl.Stop()
			return nil, err
		}
		wg.Add(1)
		go func(name string, sub *gigascope.Subscription) {
			defer wg.Done()
			var rows []schema.Tuple
			for batch := range sub.C {
				for _, m := range batch {
					if m.IsHeartbeat() {
						continue
					}
					rows = append(rows, append(schema.Tuple(nil), m.Tuple...))
				}
			}
			mu.Lock()
			run.Rows[name] = rows
			mu.Unlock()
		}(name, sub)
	}

	trace := c.effectiveTrace(cfg)
	const chunk = 256
	for i := 0; i < len(trace); i += chunk {
		end := i + chunk
		if end > len(trace) {
			end = len(trace)
		}
		batch := make([]*gigascope.Packet, 0, end-i)
		for j := i; j < end; j++ {
			batch = append(batch, &trace[j])
		}
		cl.InjectBatch("eth0", batch)
		cl.AdvanceClock(trace[end-1].TS)
	}
	if len(trace) > 0 {
		cl.AdvanceClock(trace[len(trace)-1].TS + 10_000_000)
	}
	cl.Stop()
	wg.Wait()

	for host, stats := range cl.Stats() {
		for _, st := range stats {
			switch {
			case st.RingDrop > 0:
				return nil, fmt.Errorf("difftest: harness undersized: %s/%s shed %d tuples at its rings", host, st.Name, st.RingDrop)
			case st.Quarantines > 0:
				return nil, fmt.Errorf("difftest: %s/%s quarantined %d times (%s)", host, st.Name, st.Quarantines, st.QuarantineReason)
			case st.QuarDrop > 0:
				return nil, fmt.Errorf("difftest: %s/%s dropped %d tuples while quarantined", host, st.Name, st.QuarDrop)
			case st.Op.Reordered > 0:
				return nil, fmt.Errorf("difftest: %s/%s emitted %d tuples out of order under buffer pressure", host, st.Name, st.Op.Reordered)
			case st.Reconnects > 0 || st.GapEvents > 0:
				return nil, fmt.Errorf("difftest: %s/%s saw wire degradation in a fault-free run (reconnects=%d gaps=%d)",
					host, st.Name, st.Reconnects, st.GapEvents)
			}
		}
	}
	return run, nil
}

// DistributedMatrix is the distributed equivalence matrix: {64, 4096}
// batch sizes x {2, 3, 4}-node topologies x columnar off/on x faults
// off/on — 24 cells. Shards stays 1: the capture split IS the sharding
// axis here.
func DistributedMatrix() []Config {
	var out []Config
	for _, b := range []int{64, 4096} {
		for _, n := range []int{2, 3, 4} {
			for _, col := range []bool{false, true} {
				for _, f := range []bool{false, true} {
					out = append(out, Config{MaxBatch: b, Shards: 1, Distributed: n, Columnar: col, Faults: f})
				}
			}
		}
	}
	return out
}
