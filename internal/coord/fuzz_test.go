package coord

import "testing"

// FuzzParseTopology pins the parser's safety contract: any input either
// parses (and Render round-trips through a fixpoint) or fails with a
// positioned *ParseError — never a panic, never a bare error.
func FuzzParseTopology(f *testing.F) {
	seeds := []string{
		trioSrc,
		"",
		"node a { cpu 10 }",
		"node a { cpu 10 capture eth0 listen unix:/tmp/a.sock }",
		"node a { capture eth0[0/2] uplink b cost 3 }\nnode b { sink }",
		"node a { capture eth0[0/2] }\nnode b { capture eth0[1/2] }\nnode c { sink }",
		"# comment only\n",
		"node",
		"node a",
		"node a {",
		"node a { cpu }",
		"node a { cpu -1 }",
		"node a { cpu 0x10 }",
		"node a { capture }",
		"node a { capture eth0[ }",
		"node a { capture eth0[9/2] }",
		"node a { capture eth0[0/1] }",
		"node a { capture eth0[0/65] }",
		"node a { uplink a }",
		"node a { uplink ghost }",
		"node a { uplink b }\nnode b { uplink a }",
		"node a { sink }\nnode b { sink }",
		"node a { cpu 1 }\nnode a { cpu 2 }",
		"node a { listen }",
		"node a { turbo }",
		"node a { cpu 1 } trailing",
		"node a{cpu 1;capture eth0;sink}",
		"node \x00 { cpu 1 }",
		"node a { capture eth0 eth0 }",
		"}{",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		topo, err := ParseTopology(src)
		if err != nil {
			pe, ok := err.(*ParseError)
			if !ok {
				t.Fatalf("non-ParseError %T: %v", err, err)
			}
			if pe.Line < 1 || pe.Col < 1 {
				t.Fatalf("unpositioned error line=%d col=%d: %v", pe.Line, pe.Col, err)
			}
			return
		}
		// Success: Render must re-parse and reach a fixpoint, and basic
		// accessors must not panic.
		text := topo.Render()
		topo2, err := ParseTopology(text)
		if err != nil {
			t.Fatalf("Render output does not re-parse: %v\n%s", err, text)
		}
		if text2 := topo2.Render(); text2 != text {
			t.Fatalf("Render not a fixpoint:\n%q\nvs\n%q", text, text2)
		}
		topo.Sink()
		r := topo.Router()
		for _, n := range topo.Nodes {
			for _, cap := range n.Captures {
				if host, ok := r.Route(cap.Interface, 0); !ok || topo.Node(host) == nil {
					t.Fatalf("declared capture %s unrouted", cap)
				}
			}
			topo.LinkCost(n.Name, topo.Nodes[0].Name)
		}
	})
}
