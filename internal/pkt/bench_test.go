package pkt

import "testing"

func BenchmarkBuildTCP(b *testing.B) {
	payload := make([]byte, 960)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		BuildTCP(uint64(i), TCPSpec{
			SrcIP: 0x0a000001, DstIP: 0x0a000002,
			SrcPort: 1234, DstPort: 80, Payload: payload,
		})
	}
}

func BenchmarkInterpExtract(b *testing.B) {
	p := BuildTCP(1, TCPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80})
	f, _ := LookupInterp("get_dest_port")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, ok := f.Extract(&p); !ok {
			b.Fatal("extract failed")
		}
	}
}

func BenchmarkRawRefRead(b *testing.B) {
	p := BuildTCP(1, TCPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80})
	raw := RawRef{Off: 36, Width: 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		raw.Read(&p)
	}
}
