package defrag

import (
	"bytes"
	"testing"

	"gigascope/internal/exec"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// Edge cases for the reassembly state machine: overlapping fragments,
// last-fragment-first arrival, and the exact timeout boundary. The basic
// paths (pass-through, in-order reassembly, flush) live in defrag_test.go.

// fragCase hand-crafts a fragment tuple by mutating a template row from a
// real packet: offset is in 8-byte units (as on the wire), payload is the
// fragment's slice of the IP payload.
func fragTuple(t *testing.T, s *schema.Schema, tmpl schema.Tuple, sec uint64, id uint64, off8 uint64, mf uint64, payload []byte) schema.Tuple {
	t.Helper()
	row := tmpl.Clone()
	set := func(name string, v schema.Value) {
		i, _ := s.Col(name)
		if i < 0 {
			t.Fatalf("column %s missing", name)
		}
		row[i] = v
	}
	set("time", schema.MakeUint(sec))
	set("ip_id", schema.MakeUint(id))
	set("fragment_offset", schema.MakeUint(off8))
	set("mf_flag", schema.MakeUint(mf))
	set("ip_payload", schema.MakeString(payload))
	return row
}

// template builds a baseline IPV4 tuple to mutate.
func template(t *testing.T, s *schema.Schema) schema.Tuple {
	t.Helper()
	p := pkt.BuildUDP(1_000_000, pkt.UDPSpec{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 999, DstPort: 53, TTL: 64, Payload: []byte("x")})
	return tupleFor(t, s, &p)
}

func payloadOf(t *testing.T, s *schema.Schema, m exec.Message) []byte {
	t.Helper()
	i, _ := s.Col("ip_payload")
	return m.Tuple[i].Bytes()
}

func TestOverlappingFragmentsLaterArrivalWins(t *testing.T) {
	// Head covers bytes [0,16), tail covers [8,24): the 8-byte overlap is
	// written by whichever fragment arrived later (pieces are copied in
	// arrival order), mirroring last-writer-wins reassembly.
	rep := func(b byte, n int) []byte { return bytes.Repeat([]byte{b}, n) }
	for _, headFirst := range []bool{true, false} {
		op, s := newOp(t, 30)
		tmpl := template(t, s)
		head := fragTuple(t, s, tmpl, 10, 77, 0, 1, rep('a', 16))
		tail := fragTuple(t, s, tmpl, 10, 77, 1, 0, rep('b', 16)) // off 8, total 24
		var out []exec.Message
		emit := exec.Collect(&out)
		first, second := head, tail
		if !headFirst {
			first, second = tail, head
		}
		if err := op.Push(0, exec.TupleMsg(first), emit); err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatalf("emitted before coverage complete: %v", out)
		}
		if err := op.Push(0, exec.TupleMsg(second), emit); err != nil {
			t.Fatal(err)
		}
		if len(out) != 1 {
			t.Fatalf("headFirst=%v: emitted %d datagrams", headFirst, len(out))
		}
		got := payloadOf(t, s, out[0])
		// Pieces are copied in arrival order, so the second arrival owns
		// the overlap bytes [8,16).
		want := append(rep('a', 8), rep('b', 16)...) // tail copied second
		if !headFirst {
			want = append(rep('a', 16), rep('b', 8)...) // head copied second
		}
		if !bytes.Equal(got, want) {
			t.Errorf("headFirst=%v: payload %q, want %q", headFirst, got, want)
		}
		if op.Pending() != 0 {
			t.Error("state left behind")
		}
	}
}

func TestLastFragmentFirstReassembles(t *testing.T) {
	// The MF=0 tail arrives before any other fragment: the total length is
	// known immediately, but emission must wait for full coverage — the
	// head (offset 0) arrives last and completes the datagram.
	op, s := newOp(t, 30)
	tmpl := template(t, s)
	mk := func(off8, mf uint64, b byte) schema.Tuple {
		return fragTuple(t, s, tmpl, 20, 42, off8, mf, bytes.Repeat([]byte{b}, 8))
	}
	var out []exec.Message
	emit := exec.Collect(&out)
	for _, row := range []schema.Tuple{
		mk(2, 0, 'C'), // tail: bytes [16,24), total = 24
		mk(1, 1, 'B'), // middle: [8,16)
	} {
		if err := op.Push(0, exec.TupleMsg(row), emit); err != nil {
			t.Fatal(err)
		}
		if len(out) != 0 {
			t.Fatal("emitted before the head arrived")
		}
	}
	if err := op.Push(0, exec.TupleMsg(mk(0, 1, 'A')), emit); err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 {
		t.Fatalf("emitted %d datagrams, want 1", len(out))
	}
	want := append(bytes.Repeat([]byte{'A'}, 8), bytes.Repeat([]byte{'B'}, 8)...)
	want = append(want, bytes.Repeat([]byte{'C'}, 8)...)
	if got := payloadOf(t, s, out[0]); !bytes.Equal(got, want) {
		t.Errorf("payload %q, want %q", got, want)
	}
	// The emitted tuple is built from the head fragment with the fragment
	// fields cleared and total_length recomputed.
	fi, _ := s.Col("fragment_offset")
	mi, _ := s.Col("mf_flag")
	ti, _ := s.Col("total_length")
	row := out[0].Tuple
	if row[fi].Uint() != 0 || row[mi].Uint() != 0 {
		t.Error("fragment fields not cleared on reassembled tuple")
	}
	if row[ti].Uint() != 20+24 {
		t.Errorf("total_length = %d, want 44", row[ti].Uint())
	}
}

func TestTimeoutBoundaryIsStrict(t *testing.T) {
	// Eviction fires when arrived + TimeoutSec < now: a datagram first
	// seen at t=10 with a 5s timeout survives the watermark reaching 15
	// and is evicted at 16.
	op, s := newOp(t, 5)
	tmpl := template(t, s)
	var out []exec.Message
	emit := exec.Collect(&out)
	head := fragTuple(t, s, tmpl, 10, 5, 0, 1, bytes.Repeat([]byte{1}, 8))
	if err := op.Push(0, exec.TupleMsg(head), emit); err != nil {
		t.Fatal(err)
	}
	hb := func(sec uint64) {
		bounds := make(schema.Tuple, len(s.Cols))
		ti, _ := s.Col("time")
		bounds[ti] = schema.MakeUint(sec)
		if err := op.Push(0, exec.HeartbeatMsg(bounds), emit); err != nil {
			t.Fatal(err)
		}
	}
	hb(15)
	if op.Pending() != 1 || op.EvictedIncomplete() != 0 {
		t.Fatalf("evicted at the boundary: pending=%d evicted=%d", op.Pending(), op.EvictedIncomplete())
	}
	hb(16)
	if op.Pending() != 0 || op.EvictedIncomplete() != 1 {
		t.Fatalf("not evicted past the boundary: pending=%d evicted=%d", op.Pending(), op.EvictedIncomplete())
	}
	if op.Stats().Dropped != 1 {
		t.Errorf("Dropped = %d, want 1", op.Stats().Dropped)
	}
	// A fragment of the evicted datagram arriving later starts a fresh
	// (incomplete) entry rather than resurrecting the old bytes.
	tail := fragTuple(t, s, tmpl, 17, 5, 1, 0, bytes.Repeat([]byte{2}, 8))
	if err := op.Push(0, exec.TupleMsg(tail), emit); err != nil {
		t.Fatal(err)
	}
	if op.Pending() != 1 {
		t.Errorf("late fragment not re-tabled: pending=%d", op.Pending())
	}
	for _, m := range out {
		if !m.IsHeartbeat() {
			t.Errorf("unexpected tuple emitted: %v", m.Tuple)
		}
	}
}

func TestTimeoutEvictsPerDatagram(t *testing.T) {
	// Two incomplete datagrams with different first-arrival times: a
	// watermark that only ages out the older one must leave the newer.
	op, s := newOp(t, 5)
	tmpl := template(t, s)
	var out []exec.Message
	emit := exec.Collect(&out)
	old := fragTuple(t, s, tmpl, 10, 100, 0, 1, bytes.Repeat([]byte{1}, 8))
	young := fragTuple(t, s, tmpl, 14, 200, 0, 1, bytes.Repeat([]byte{2}, 8))
	if err := op.Push(0, exec.TupleMsg(old), emit); err != nil {
		t.Fatal(err)
	}
	if err := op.Push(0, exec.TupleMsg(young), emit); err != nil {
		t.Fatal(err)
	}
	if op.Pending() != 2 {
		t.Fatalf("pending = %d, want 2 (distinct ip_id keeps datagrams apart)", op.Pending())
	}
	bounds := make(schema.Tuple, len(s.Cols))
	ti, _ := s.Col("time")
	bounds[ti] = schema.MakeUint(16)
	if err := op.Push(0, exec.HeartbeatMsg(bounds), emit); err != nil {
		t.Fatal(err)
	}
	if op.Pending() != 1 || op.EvictedIncomplete() != 1 {
		t.Fatalf("pending=%d evicted=%d, want 1/1", op.Pending(), op.EvictedIncomplete())
	}
	// The surviving datagram still completes normally.
	tail := fragTuple(t, s, tmpl, 17, 200, 1, 0, bytes.Repeat([]byte{3}, 8))
	if err := op.Push(0, exec.TupleMsg(tail), emit); err != nil {
		t.Fatal(err)
	}
	var tuples int
	for _, m := range out {
		if !m.IsHeartbeat() {
			tuples++
		}
	}
	if tuples != 1 {
		t.Errorf("emitted %d tuples, want the surviving datagram only", tuples)
	}
}
