// dualport_merge reproduces the paper's motivating use of the merge
// operator (§2.2): optical links are simplex, so observing a full-duplex
// logical link means monitoring two interfaces and merging the streams
// into one, preserving the time order. One direction here is much quieter
// than the other; heartbeats keep the merge from blocking on it (§3).
//
//	go run ./examples/dualport_merge
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New(gigascope.Config{HeartbeatUsec: 200_000})
	if err != nil {
		log.Fatal(err)
	}

	// The paper's tcpdest0/tcpdest1/tcpdest trio, verbatim semantics.
	sys.MustAddQuery(`
		DEFINE { query_name tcpdest0; }
		SELECT destIP, destPort, time FROM eth0.TCP
		WHERE ipversion = 4 and protocol = 6`, nil)
	sys.MustAddQuery(`
		DEFINE { query_name tcpdest1; }
		SELECT destIP, destPort, time FROM eth1.TCP
		WHERE ipversion = 4 and protocol = 6`, nil)
	sys.MustAddQuery(`
		DEFINE { query_name tcpdest; }
		MERGE tcpdest0.time : tcpdest1.time
		FROM tcpdest0, tcpdest1`, nil)

	sub, err := sys.Subscribe("tcpdest", 4096)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	// Two directions of one link: a busy request direction and a quiet
	// one, as different generators bound to different interfaces.
	busy, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 1,
		Classes: []gigascope.TrafficClass{{
			Name: "req", RateMbps: 20, PktBytes: 700, DstPort: 80,
			Proto: gigascope.ProtoTCP, Payload: gigascope.PayloadHTTP, HTTPFraction: 1,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}
	quiet, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 2,
		Classes: []gigascope.TrafficClass{{
			Name: "resp", RateMbps: 0.05, PktBytes: 600, DstPort: 30000,
			Proto: gigascope.ProtoTCP,
		}},
	})
	if err != nil {
		log.Fatal(err)
	}

	go func() {
		const horizon = 3_000_000 // 3 virtual seconds
		for usec := uint64(100_000); usec <= horizon; usec += 100_000 {
			busy.Until(usec, func(p *gigascope.Packet) { sys.Inject("eth0", p) })
			quiet.Until(usec, func(p *gigascope.Packet) { sys.Inject("eth1", p) })
			// Idle interfaces still advance their clocks, producing the
			// heartbeats that unblock the merge.
			sys.AdvanceClock(usec)
		}
		sys.Stop()
	}()

	var total, disordered int
	var lastTime uint64
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			ts := m.Tuple[2].Uint()
			if ts < lastTime {
				disordered++
			}
			lastTime = ts
			total++
		}
	}
	fmt.Printf("merged %d tuples from two interfaces\n", total)
	fmt.Printf("time order violations: %d (merge preserves the ordering property)\n", disordered)
}
