package netflow

import (
	"testing"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

func TestRecordEncodeDecodeRoundTrip(t *testing.T) {
	r := Record{
		SrcIP: 0x0a010203, DstIP: 0xc0a80105,
		SrcPort: 4242, DstPort: 80,
		Proto: pkt.ProtoTCP, Flags: pkt.FlagSYN | pkt.FlagACK,
		Packets: 17, Bytes: 12345,
		First: 1000, Last: 1020,
	}
	p := r.Encode(1_020_050_000)
	got, err := Decode(&p)
	if err != nil {
		t.Fatal(err)
	}
	if got != r {
		t.Errorf("round trip: got %+v, want %+v", got, r)
	}
	short := pkt.Packet{Data: p.Data[:10]}
	if _, err := Decode(&short); err == nil {
		t.Error("short record decoded")
	}
}

func TestInterpFunctionsMatchDecode(t *testing.T) {
	r := Record{
		SrcIP: 0x0a010203, DstIP: 0xc0a80105,
		SrcPort: 4242, DstPort: 80,
		Proto: 6, Flags: 2, Packets: 9, Bytes: 999,
		First: 500, Last: 522,
	}
	p := r.Encode(522_100_000)
	cases := map[string]uint64{
		"nf_src_port":   4242,
		"nf_dest_port":  80,
		"nf_proto":      6,
		"nf_tcp_flags":  2,
		"nf_packets":    9,
		"nf_bytes":      999,
		"nf_start_time": 500,
		"nf_end_time":   522,
	}
	for name, want := range cases {
		f, ok := pkt.LookupInterp(name)
		if !ok {
			t.Fatalf("%s unregistered", name)
		}
		v, ok := f.Extract(&p)
		if !ok || v.Uint() != want {
			t.Errorf("%s = %v, %v; want %d", name, v, ok, want)
		}
	}
	f, _ := pkt.LookupInterp("nf_src_ip")
	if v, _ := f.Extract(&p); v.IP() != r.SrcIP {
		t.Errorf("nf_src_ip = %v", v)
	}
	f, _ = pkt.LookupInterp("get_time")
	if v, _ := f.Extract(&p); v.Uint() != 522 {
		t.Errorf("get_time = %v", v)
	}
}

func TestSchemaValidAndRegistered(t *testing.T) {
	s := Schema()
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	i, c := s.Col("start_time")
	if i < 0 || c.Ordering.Kind != schema.OrderBandedIncreasing || c.Ordering.Band != 30 {
		t.Errorf("start_time ordering = %v", c)
	}
	cat := schema.NewCatalog()
	if err := Register(cat); err != nil {
		t.Fatal(err)
	}
	if _, ok := cat.Lookup("netflow"); !ok {
		t.Error("NETFLOW not registered")
	}
}

func TestGeneratorOrderingProperties(t *testing.T) {
	// The central claim: end timestamps monotone increasing, start
	// timestamps banded-increasing(30), start increasing within a flow.
	g, err := NewGenerator(Config{Seed: 1, FlowsPerSecond: 20, MeanDurationSec: 25, MeanPps: 10, StartSec: 100})
	if err != nil {
		t.Fatal(err)
	}
	endCheck := schema.NewOrderChecker(schema.Ordering{Kind: schema.OrderIncreasing}, nil)
	bandCheck := schema.NewOrderChecker(schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: 31}, nil)
	groupCheck := schema.NewOrderChecker(
		schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"flow"}},
		func(tup schema.Tuple) string { return tup[0].String() },
	)
	sawStraggler := false
	var hwm uint32
	for i := 0; i < 5000; i++ {
		p := g.Next()
		r, err := Decode(&p)
		if err != nil {
			t.Fatal(err)
		}
		if r.First > r.Last {
			t.Fatalf("record %d: start %d after end %d", i, r.First, r.Last)
		}
		if err := endCheck.Observe(schema.MakeUint(uint64(r.Last)), nil); err != nil {
			t.Fatalf("end time: %v", err)
		}
		if err := bandCheck.Observe(schema.MakeUint(uint64(r.First)), nil); err != nil {
			t.Fatalf("start time: %v", err)
		}
		key := schema.Tuple{schema.MakeStr(flowKey(r)), schema.MakeUint(uint64(r.First))}
		if err := groupCheck.Observe(key[1], key); err != nil {
			t.Fatalf("in-group start: %v", err)
		}
		if r.First < hwm {
			sawStraggler = true // starts genuinely not monotone overall
		}
		if r.First > hwm {
			hwm = r.First
		}
	}
	if !sawStraggler {
		t.Error("start timestamps were globally monotone; workload too tame to exercise banding")
	}
}

func flowKey(r Record) string {
	return schema.FormatIP(r.SrcIP) + "/" + schema.FormatIP(r.DstIP)
}

func TestGeneratorLongFlowsAreSegmented(t *testing.T) {
	g, err := NewGenerator(Config{Seed: 2, FlowsPerSecond: 2, MeanDurationSec: 120, MeanPps: 5})
	if err != nil {
		t.Fatal(err)
	}
	segs := 0
	for i := 0; i < 2000; i++ {
		p := g.Next()
		r, _ := Decode(&p)
		if r.Last-r.First > SegmentSeconds {
			t.Fatalf("segment longer than %ds: %+v", SegmentSeconds, r)
		}
		if r.Last-r.First == SegmentSeconds {
			segs++
		}
	}
	if segs == 0 {
		t.Error("no 30s segments from long flows")
	}
}

func TestGeneratorConfigErrors(t *testing.T) {
	if _, err := NewGenerator(Config{}); err == nil {
		t.Error("zero config accepted")
	}
}

// End-to-end: the paper's NetFlow aggregation pattern — group by a
// banded-increasing key — compiled and run over generated records.
func TestNetflowQueryEndToEnd(t *testing.T) {
	cat := schema.NewCatalog()
	if err := Register(cat); err != nil {
		t.Fatal(err)
	}
	q, err := gsql.ParseQuery(`
		DEFINE { query_name nfagg; }
		SELECT stb, count(*), sum(bytes)
		FROM NETFLOW
		GROUP BY start_time/60 as stb`)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := core.Compile(cat, q, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The banded start_time divides into minute buckets with band
	// ceil(30/60) = 1: check the plan imputed it.
	lfta := cq.Nodes[0]
	ord := lfta.Out.Cols[0].Ordering
	if ord.Kind != schema.OrderBandedIncreasing || ord.Band != 1 {
		t.Errorf("stb ordering = %s, want banded_increasing(1)", ord)
	}

	insts := make([]*core.Instance, len(cq.Nodes))
	for i, n := range cq.Nodes {
		inst, err := n.Instantiate(nil)
		if err != nil {
			t.Fatal(err)
		}
		insts[i] = inst
	}
	var out []exec.Message
	sink := exec.Collect(&out)
	mid := func(m exec.Message) { insts[1].Op.Push(0, m, sink) }

	g, err := NewGenerator(Config{Seed: 3, FlowsPerSecond: 30, MeanDurationSec: 40, MeanPps: 3})
	if err != nil {
		t.Fatal(err)
	}
	var wantBytes = map[uint64]uint64{}
	var wantCount = map[uint64]uint64{}
	const n = 8000
	for i := 0; i < n; i++ {
		p := g.Next()
		r, _ := Decode(&p)
		wantBytes[uint64(r.First/60)] += uint64(r.Bytes)
		wantCount[uint64(r.First/60)]++
		if err := insts[0].PushPacket(&p, mid); err != nil {
			t.Fatal(err)
		}
	}
	insts[0].Op.FlushAll(mid)
	insts[1].Op.FlushAll(sink)

	gotBytes := map[uint64]uint64{}
	gotCount := map[uint64]uint64{}
	for _, m := range out {
		if m.IsHeartbeat() {
			continue
		}
		gotCount[m.Tuple[0].Uint()] += m.Tuple[1].Uint()
		gotBytes[m.Tuple[0].Uint()] += m.Tuple[2].Uint()
	}
	if len(gotCount) != len(wantCount) {
		t.Fatalf("buckets = %d, want %d", len(gotCount), len(wantCount))
	}
	for k := range wantCount {
		if gotCount[k] != wantCount[k] || gotBytes[k] != wantBytes[k] {
			t.Errorf("bucket %d: got (%d, %d), want (%d, %d)",
				k, gotCount[k], gotBytes[k], wantCount[k], wantBytes[k])
		}
	}
}
