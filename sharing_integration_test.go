package gigascope

import (
	"strings"
	"testing"

	"gigascope/internal/rts"
)

// sharingTrace mixes traffic so the shared prefilter has something to
// gate: port-80 GET/POST requests (match both web queries' LFTA), port-80
// noise (pass the gate, fail the regex), and port-443/53 traffic the gate
// drops before any LFTA sees it.
func sharingTrace() []*Packet {
	var out []*Packet
	payloads := [][]byte{
		[]byte("GET /index.html HTTP/1.1"),
		[]byte("POST /login HTTP/1.1"),
		[]byte("xxxxxxxxxxxxxxxx"),
	}
	ports := []uint16{80, 80, 80, 443, 8443, 53}
	for i := 0; i < 600; i++ {
		p := BuildTCP(uint64(1_000_000+i*1000), TCPSpec{
			SrcIP:   0x0a000000 + uint32(i%50),
			DstIP:   0xc0a80001,
			DstPort: ports[i%len(ports)],
			Payload: payloads[i%len(payloads)],
		})
		out = append(out, &p)
	}
	return out
}

// webScript compiles to two structurally identical pass-through LFTAs
// (same interface, projection, and cheap predicate; only the HFTA-side
// regex differs), so the share pass folds them into one.
const webScript = `
	DEFINE { query_name web_get; }
	SELECT time, destPort FROM eth0.TCP
	WHERE destPort = 80 and str_regex_match(payload, 'GET');
	DEFINE { query_name web_post; }
	SELECT time, destPort FROM eth0.TCP
	WHERE destPort = 80 and str_regex_match(payload, 'POST')`

func runWebScript(t *testing.T, cfg Config) (*System, map[string][]string) {
	t.Helper()
	sys, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddScript(webScript); err != nil {
		t.Fatal(err)
	}
	subs := map[string]*Subscription{}
	for _, name := range []string{"web_get", "web_post"} {
		sub, err := sys.Subscribe(name, 4096)
		if err != nil {
			t.Fatal(err)
		}
		subs[name] = sub
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	sys.InjectBatch("eth0", sharingTrace())
	sys.Stop()
	rows := map[string][]string{}
	for name, sub := range subs {
		for b := range sub.C {
			for _, m := range b {
				if m.IsHeartbeat() {
					continue
				}
				parts := make([]string, len(m.Tuple))
				for i, v := range m.Tuple {
					parts[i] = v.String()
				}
				rows[name] = append(rows[name], strings.Join(parts, "|"))
			}
		}
	}
	return sys, rows
}

// TestSharedLFTAInstantiatedOnce is the acceptance test for shared-LFTA
// elimination: two queries whose LFTA subplans are structurally identical
// instantiate exactly one runtime LFTA node, and their outputs are
// byte-identical to an unshared run over the same trace.
func TestSharedLFTAInstantiatedOnce(t *testing.T) {
	shared, sharedRows := runWebScript(t, Config{})
	unshared, unsharedRows := runWebScript(t, Config{DisableSharing: true})

	countLFTAs := func(sys *System) int {
		n := 0
		for _, name := range sys.Registry() {
			if strings.HasPrefix(name, "_lfta_") {
				n++
			}
		}
		return n
	}
	if got := countLFTAs(shared); got != 1 {
		t.Errorf("shared run instantiated %d LFTA nodes, want exactly 1 (registry: %v)",
			got, shared.Registry())
	}
	if got := countLFTAs(unshared); got != 2 {
		t.Errorf("unshared run instantiated %d LFTA nodes, want 2", got)
	}

	for _, name := range []string{"web_get", "web_post"} {
		if len(sharedRows[name]) == 0 {
			t.Fatalf("%s produced no rows", name)
		}
		if strings.Join(sharedRows[name], "\n") != strings.Join(unsharedRows[name], "\n") {
			t.Errorf("%s: shared and unshared outputs differ\nshared:   %v\nunshared: %v",
				name, sharedRows[name], unsharedRows[name])
		}
	}

	// The canonical node's stats attribute its work to both queries.
	var sharedBy []string
	for _, ns := range shared.Stats() {
		if strings.HasPrefix(ns.Name, "_lfta_") {
			sharedBy = ns.SharedBy
		}
	}
	if len(sharedBy) != 1 || sharedBy[0] != "web_post" {
		t.Errorf("shared LFTA SharedBy = %v, want [web_post]", sharedBy)
	}
}

// TestPrefilterGatesDelivery checks the paper-§5 gate: the shared cheap
// predicate (destPort = 80) is evaluated once per packet at the interface,
// and packets failing it are never delivered to the LFTA — the saved work
// shows up as PrefilterGated and a reduced LFTA packet count.
func TestPrefilterGatesDelivery(t *testing.T) {
	sys, _ := runWebScript(t, Config{})

	var is *rts.IfaceStats
	for _, s := range sys.IfaceStats() {
		if s.Name == "eth0" {
			c := s
			is = &c
		}
	}
	if is == nil {
		t.Fatal("no eth0 interface stats")
	}
	if is.PrefilterGroups != 1 || is.PrefilterTerms != 1 {
		t.Errorf("prefilter groups=%d terms=%d, want 1/1", is.PrefilterGroups, is.PrefilterTerms)
	}
	if is.PrefilterEvals == 0 {
		t.Errorf("gate evaluated no terms")
	}
	// 3 of every 6 trace packets are non-port-80.
	if want := uint64(300); is.PrefilterGated != want {
		t.Errorf("PrefilterGated = %d, want %d", is.PrefilterGated, want)
	}

	for _, ns := range sys.Stats() {
		if strings.HasPrefix(ns.Name, "_lfta_") {
			if ns.Packets != 300 {
				t.Errorf("shared LFTA saw %d packets, want 300 (gated deliveries skipped)", ns.Packets)
			}
		}
	}
}

// TestSharingUnderShards runs the same script with a sharded capture path:
// gating happens per shard, outputs must still match the unsharded run
// (modulo order within the merge guarantee, so compare as multisets).
func TestSharingUnderShards(t *testing.T) {
	_, plain := runWebScript(t, Config{})
	_, sharded := runWebScript(t, Config{Shards: 4})
	for _, name := range []string{"web_get", "web_post"} {
		a := append([]string(nil), plain[name]...)
		b := append([]string(nil), sharded[name]...)
		if len(a) != len(b) {
			t.Fatalf("%s: row count %d (unsharded) vs %d (sharded)", name, len(a), len(b))
		}
		seen := map[string]int{}
		for _, r := range a {
			seen[r]++
		}
		for _, r := range b {
			seen[r]--
		}
		for r, n := range seen {
			if n != 0 {
				t.Errorf("%s: row multiset mismatch at %q (%+d)", name, r, n)
			}
		}
	}
}
