package gigascope

import (
	"fmt"

	"gigascope/internal/core"
	"gigascope/internal/faultinject"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
	"gigascope/internal/wire"
)

// Wire-transport aliases: the inter-RTS stream subscription layer
// (internal/wire) exposed through the root API. A WireServer exports
// this System's catalog streams to remote subscribers; a WireClient
// imports a remote stream as an ordinary local source node, owning the
// reconnect/backoff/degrade failure machinery.
type (
	// WireServer exports streams over TCP or unix sockets; see ServeWire.
	WireServer = wire.Server
	// WireClient imports one remote stream; see ConnectWire.
	WireClient = wire.Client
	// WireServerConfig tunes a WireServer (zero value is usable).
	WireServerConfig = wire.ServerConfig
	// WireClientConfig tunes a WireClient; Network/Addr/Stream required.
	WireClientConfig = wire.ClientConfig
	// DegradePolicy selects hold-and-wait vs drop-partition-and-continue
	// when a wire peer is declared dead.
	DegradePolicy = wire.DegradePolicy
	// PeerStats is the remote-peer failure snapshot a WireClient reports
	// (also surfaced as SYSMON.NodeStats peer columns).
	PeerStats = rts.PeerStats
	// WireFaults injects seeded connection faults (kills, truncations,
	// stalls, clock skew) into wire transports; see NewWireFaults.
	WireFaults = faultinject.WireFaults
	// ConnFaultConfig tunes a WireFaults injector.
	ConnFaultConfig = faultinject.ConnFaultConfig
	// Schema describes one stream or protocol layout.
	Schema = schema.Schema
)

// Degrade policies for WireClientConfig.Degrade.
const (
	// DegradeHold retries a dead peer forever; downstream waits.
	DegradeHold = wire.DegradeHold
	// DegradeDropPartition closes the local stream after DeadAfter failed
	// dials, so downstream merges continue over surviving partitions.
	DegradeDropPartition = wire.DegradeDropPartition
)

// NewWireFaults builds a seeded connection fault injector; plug its
// WrapConn/SkewClock hooks into WireServerConfig / WireClientConfig.
func NewWireFaults(cfg ConnFaultConfig) *WireFaults { return faultinject.NewWireFaults(cfg) }

// Clock returns the System-wide virtual-clock high-water mark
// (microseconds) — what wire keepalive frames announce to subscribers.
func (s *System) Clock() uint64 { return s.mgr.Clock() }

// LookupSchema returns the named stream's catalog schema.
func (s *System) LookupSchema(name string) (*Schema, bool) { return s.mgr.LookupSchema(name) }

// ServeWire exports every subscribable stream of this System on
// network/addr ("tcp", "unix"): remote Systems subscribe by stream name
// with ConnectWire, receiving tuple batches, virtual-clock heartbeats,
// and the same bounded-ring shed accounting as local subscribers.
func (s *System) ServeWire(network, addr string, cfg WireServerConfig) (*WireServer, error) {
	return wire.ListenAndServe(s.mgr, network, addr, cfg)
}

// ConnectWire imports a remote stream served by another System's
// ServeWire as a local source node: local queries read it by name
// (FROM cfg.LocalName) like any native stream. The returned client owns
// the connection — reconnect with capped jittered backoff, gap
// punctuations and SYSMON gap accounting on resume, and the configured
// degrade policy when the peer is declared dead. Close it to drop the
// import; Stop closes any still-open imports' local streams.
func (s *System) ConnectWire(cfg WireClientConfig) (*WireClient, error) {
	return wire.Connect(s.mgr, cfg)
}

// AddReunifyNode merges several same-schema streams — typically wire
// imports of one logical stream partitioned across capture hosts — into
// a single ordered stream under name, reusing the shard-reunify merge
// (order-preserving on the first increasing column, fan-in fallback).
// Input port i reads inputs[i]; schema agreement is checked by the same
// fingerprint the wire handshake pins.
func (s *System) AddReunifyNode(name string, inputs []string) error {
	if len(inputs) == 0 {
		return fmt.Errorf("gigascope: reunify needs at least one input stream")
	}
	var out *schema.Schema
	var fp uint64
	for i, in := range inputs {
		sc, ok := s.catalog.Lookup(in)
		if !ok {
			return fmt.Errorf("gigascope: unknown stream %s", in)
		}
		f := wire.SchemaFingerprint(sc)
		if i == 0 {
			out, fp = sc, f
		} else if f != fp {
			return fmt.Errorf("gigascope: reunify input %s schema differs from %s", in, inputs[0])
		}
	}
	op, err := core.NewShardReunify(out, len(inputs))
	if err != nil {
		return err
	}
	return s.mgr.AddUserNode(name, op, inputs)
}
