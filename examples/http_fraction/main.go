// http_fraction runs the paper's §4 analysis live: what fraction of port
// 80 traffic is actually HTTP (the rest is tunneled through the
// firewall)? Two composed queries count all port-80 packets and the
// subset whose payload matches ^[^\n]*HTTP/1.* per second; the consumer
// joins the two result streams and prints the fraction.
//
// The compiler splits the regex query exactly as the paper describes:
// "the filter query was split into an LFTA which filters TCP packets on
// port 80, and an HFTA part which performs the regular expression
// matching."
//
//	go run ./examples/http_fraction
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}

	// All port-80 packets, counted per second. Cheap: runs as one LFTA.
	sys.MustAddQuery(`
		DEFINE { query_name port80; }
		SELECT time, srcIP, destIP, payload
		FROM TCP
		WHERE protocol = 6 and destPort = 80`, nil)
	sys.MustAddQuery(`
		DEFINE { query_name port80_per_sec; }
		SELECT time as sec, count(*) as pkts
		FROM port80 GROUP BY time`, nil)

	// The HTTP subset: regex is too expensive for an LFTA, so it runs in
	// an HFTA reading the port80 stream.
	sys.MustAddQuery(`
		DEFINE { query_name http_per_sec; }
		SELECT time as sec, count(*) as pkts
		FROM port80
		WHERE str_regex_match(payload, '^[^\n]*HTTP/1.*')
		GROUP BY time`, nil)

	plan, _ := sys.Explain("port80")
	fmt.Println(plan)

	allSub, err := sys.Subscribe("port80_per_sec", 1024)
	if err != nil {
		log.Fatal(err)
	}
	httpSub, err := sys.Subscribe("http_per_sec", 1024)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	// 60 Mbit/s of port-80 traffic, 60% genuine HTTP, plus background.
	gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
		Seed: 42,
		Classes: []gigascope.TrafficClass{
			{Name: "port80", RateMbps: 60, PktBytes: 1000, DstPort: 80,
				Proto: gigascope.ProtoTCP, Payload: gigascope.PayloadHTTP, HTTPFraction: 0.6},
			{Name: "background", RateMbps: 40, PktBytes: 1000, DstPort: 9000,
				Proto: gigascope.ProtoTCP},
		},
	})
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		gen.Until(10_000_000, func(p *gigascope.Packet) { sys.Inject("", p) })
		sys.Stop()
	}()

	all := map[uint64]uint64{}
	http := map[uint64]uint64{}
	for allSub != nil || httpSub != nil {
		select {
		case b, ok := <-subChan(allSub):
			if !ok {
				allSub = nil
				continue
			}
			for _, m := range b {
				if !m.IsHeartbeat() {
					all[m.Tuple[0].Uint()] = m.Tuple[1].Uint()
				}
			}
		case b, ok := <-subChan(httpSub):
			if !ok {
				httpSub = nil
				continue
			}
			for _, m := range b {
				if !m.IsHeartbeat() {
					http[m.Tuple[0].Uint()] = m.Tuple[1].Uint()
				}
			}
		}
	}

	fmt.Println("sec   port80 pkts   HTTP pkts   HTTP fraction")
	for sec := uint64(0); sec < 10; sec++ {
		a := all[sec]
		h := http[sec]
		if a == 0 {
			continue
		}
		fmt.Printf("%3d   %11d   %9d   %.3f\n", sec, a, h, float64(h)/float64(a))
	}
}

// subChan returns a nil channel for a nil subscription so select skips it.
func subChan(s *gigascope.Subscription) chan gigascope.Batch {
	if s == nil {
		return nil
	}
	return s.C
}
