package faultinject

import (
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// ConnFaultConfig drives deterministic connection-level faults for the
// wire transport: seeded kills, write truncations, stalls, and heartbeat
// clock skew. Positional triggers (KillAt/TruncateAt) fire at exact
// global write indices — the reconnect tests place a kill between two
// known publishes; rate triggers come from one seeded PRNG consumed in
// call order, so a fixed traffic sequence reproduces the same fault
// placement.
type ConnFaultConfig struct {
	Seed int64

	// KillAt closes the connection instead of performing the write with
	// the given global index (0-based, counted across every wrapped
	// connection in wrap order).
	KillAt []uint64
	// TruncateAt performs only the first half of the write with the given
	// global index, then closes the connection — a torn frame on the wire.
	TruncateAt []uint64
	// KillRate kills a connection on a seeded fraction of writes.
	KillRate float64

	// StallEvery sleeps Stall before every n'th write (n = StallEvery),
	// modelling a wedged peer or congested path. 0 disables.
	StallEvery uint64
	Stall      time.Duration

	// SkewUsec/SkewRate perturb heartbeat clocks through SkewClock: a
	// seeded fraction of announced clocks moves by up to ±SkewUsec.
	SkewUsec uint64
	SkewRate float64
}

// ConnFaultStats counts the faults a WireFaults delivered.
type ConnFaultStats struct {
	Writes    uint64
	Kills     uint64
	Truncates uint64
	Stalls    uint64
	Skews     uint64
}

// WireFaults wraps wire-transport connections with seeded fault
// delivery. Plug WrapConn into wire.ServerConfig/ClientConfig.WrapConn
// and SkewClock into wire.ServerConfig.SkewClock.
type WireFaults struct {
	cfg ConnFaultConfig

	mu  sync.Mutex
	rng *rand.Rand

	writes    atomic.Uint64
	kills     atomic.Uint64
	truncates atomic.Uint64
	stalls    atomic.Uint64
	skews     atomic.Uint64
}

// NewWireFaults builds a connection fault injector from cfg.
func NewWireFaults(cfg ConnFaultConfig) *WireFaults {
	return &WireFaults{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the delivered-fault counters.
func (w *WireFaults) Stats() ConnFaultStats {
	return ConnFaultStats{
		Writes:    w.writes.Load(),
		Kills:     w.kills.Load(),
		Truncates: w.truncates.Load(),
		Stalls:    w.stalls.Load(),
		Skews:     w.skews.Load(),
	}
}

// WrapConn wraps one connection; the write counter is global across all
// wrapped connections, so positional triggers address the whole run.
func (w *WireFaults) WrapConn(c net.Conn) net.Conn {
	return &faultConn{Conn: c, w: w}
}

// SkewClock perturbs a heartbeat clock by a seeded offset in
// [-SkewUsec, +SkewUsec] on a SkewRate fraction of calls (clamped at 0
// on underflow).
func (w *WireFaults) SkewClock(clock uint64) uint64 {
	if w.cfg.SkewRate <= 0 || w.cfg.SkewUsec == 0 {
		return clock
	}
	w.mu.Lock()
	hit := w.rng.Float64() < w.cfg.SkewRate
	var off int64
	if hit {
		off = w.rng.Int63n(2*int64(w.cfg.SkewUsec)+1) - int64(w.cfg.SkewUsec)
	}
	w.mu.Unlock()
	if !hit {
		return clock
	}
	w.skews.Add(1)
	if off < 0 && clock < uint64(-off) {
		return 0
	}
	return clock + uint64(off)
}

func contains(xs []uint64, x uint64) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// faultConn intercepts writes. Each write consumes one global index;
// faults are decided before the underlying write so a kill suppresses
// the frame entirely and a truncation tears exactly one frame (the wire
// sender emits each frame as a single Write).
type faultConn struct {
	net.Conn
	w *WireFaults
}

func (c *faultConn) Write(p []byte) (int, error) {
	w := c.w
	idx := w.writes.Add(1) - 1
	if w.cfg.StallEvery > 0 && (idx+1)%w.cfg.StallEvery == 0 && w.cfg.Stall > 0 {
		w.stalls.Add(1)
		time.Sleep(w.cfg.Stall)
	}
	if contains(w.cfg.TruncateAt, idx) {
		w.truncates.Add(1)
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, fmt.Errorf("faultinject: truncated write %d", idx)
	}
	kill := contains(w.cfg.KillAt, idx)
	if !kill && w.cfg.KillRate > 0 {
		w.mu.Lock()
		kill = w.rng.Float64() < w.cfg.KillRate
		w.mu.Unlock()
	}
	if kill {
		w.kills.Add(1)
		c.Conn.Close()
		return 0, fmt.Errorf("faultinject: killed connection at write %d", idx)
	}
	return c.Conn.Write(p)
}
