package gsql

import (
	"strings"
)

// Lexer turns GSQL source text into tokens. It supports SQL-style line
// comments (--), C/C++ comments, single- and double-quoted strings, dotted
// quad IP literals, and $name parameter references.
type Lexer struct {
	src  string
	off  int
	line int
	col  int
}

// NewLexer returns a lexer over src.
func NewLexer(src string) *Lexer {
	return &Lexer{src: src, line: 1, col: 1}
}

func (l *Lexer) pos() Pos { return Pos{Line: l.line, Col: l.col} }

func (l *Lexer) peek() byte {
	if l.off >= len(l.src) {
		return 0
	}
	return l.src[l.off]
}

func (l *Lexer) peek2() byte {
	if l.off+1 >= len(l.src) {
		return 0
	}
	return l.src[l.off+1]
}

func (l *Lexer) advance() byte {
	c := l.src[l.off]
	l.off++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *Lexer) skipSpaceAndComments() error {
	for l.off < len(l.src) {
		c := l.peek()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '-' && l.peek2() == '-':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '/':
			for l.off < len(l.src) && l.peek() != '\n' {
				l.advance()
			}
		case c == '/' && l.peek2() == '*':
			start := l.pos()
			l.advance()
			l.advance()
			for {
				if l.off >= len(l.src) {
					return errf(start, "unterminated block comment")
				}
				if l.peek() == '*' && l.peek2() == '/' {
					l.advance()
					l.advance()
					break
				}
				l.advance()
			}
		default:
			return nil
		}
	}
	return nil
}

func isIdentStart(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z'
}

func isIdentChar(c byte) bool { return isIdentStart(c) || c >= '0' && c <= '9' }

func isDigit(c byte) bool { return c >= '0' && c <= '9' }

// Next returns the next token.
func (l *Lexer) Next() (Token, error) {
	if err := l.skipSpaceAndComments(); err != nil {
		return Token{}, err
	}
	pos := l.pos()
	if l.off >= len(l.src) {
		return Token{Kind: TokEOF, Pos: pos}, nil
	}
	c := l.peek()
	switch {
	case isIdentStart(c):
		start := l.off
		for l.off < len(l.src) && isIdentChar(l.peek()) {
			l.advance()
		}
		text := l.src[start:l.off]
		if up := strings.ToUpper(text); keywords[up] {
			return Token{Kind: TokKeyword, Text: up, Pos: pos}, nil
		}
		return Token{Kind: TokIdent, Text: text, Pos: pos}, nil
	case isDigit(c):
		return l.lexNumber(pos)
	case c == '\'' || c == '"':
		return l.lexString(pos)
	case c == '$':
		l.advance()
		if !isIdentStart(l.peek()) {
			return Token{}, errf(pos, "expected parameter name after '$'")
		}
		start := l.off
		for l.off < len(l.src) && isIdentChar(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokParam, Text: l.src[start:l.off], Pos: pos}, nil
	}
	l.advance()
	switch c {
	case '(':
		return Token{Kind: TokLParen, Pos: pos}, nil
	case ')':
		return Token{Kind: TokRParen, Pos: pos}, nil
	case '{':
		return Token{Kind: TokLBrace, Pos: pos}, nil
	case '}':
		return Token{Kind: TokRBrace, Pos: pos}, nil
	case '[':
		return Token{Kind: TokLBracket, Pos: pos}, nil
	case ']':
		return Token{Kind: TokRBracket, Pos: pos}, nil
	case ',':
		return Token{Kind: TokComma, Pos: pos}, nil
	case ';':
		return Token{Kind: TokSemi, Pos: pos}, nil
	case '.':
		return Token{Kind: TokDot, Pos: pos}, nil
	case ':':
		return Token{Kind: TokColon, Pos: pos}, nil
	case '*':
		return Token{Kind: TokStar, Pos: pos}, nil
	case '+':
		return Token{Kind: TokPlus, Pos: pos}, nil
	case '-':
		return Token{Kind: TokMinus, Pos: pos}, nil
	case '/':
		return Token{Kind: TokSlash, Pos: pos}, nil
	case '%':
		return Token{Kind: TokPercent, Pos: pos}, nil
	case '&':
		return Token{Kind: TokAmp, Pos: pos}, nil
	case '|':
		return Token{Kind: TokPipe, Pos: pos}, nil
	case '^':
		return Token{Kind: TokCaret, Pos: pos}, nil
	case '~':
		return Token{Kind: TokTilde, Pos: pos}, nil
	case '=':
		return Token{Kind: TokEq, Pos: pos}, nil
	case '!':
		if l.peek() == '=' {
			l.advance()
			return Token{Kind: TokNe, Pos: pos}, nil
		}
		return Token{}, errf(pos, "unexpected character '!'")
	case '<':
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokLe, Pos: pos}, nil
		case '>':
			l.advance()
			return Token{Kind: TokNe, Pos: pos}, nil
		case '<':
			l.advance()
			return Token{Kind: TokShl, Pos: pos}, nil
		}
		return Token{Kind: TokLt, Pos: pos}, nil
	case '>':
		switch l.peek() {
		case '=':
			l.advance()
			return Token{Kind: TokGe, Pos: pos}, nil
		case '>':
			l.advance()
			return Token{Kind: TokShr, Pos: pos}, nil
		}
		return Token{Kind: TokGt, Pos: pos}, nil
	}
	return Token{}, errf(pos, "unexpected character %q", string(c))
}

// lexNumber scans integer, float, and dotted-quad IP literals. A number
// followed by two more dotted groups is an IP literal (1.2.3.4); a number
// with one dot and a fractional part is a float.
func (l *Lexer) lexNumber(pos Pos) (Token, error) {
	start := l.off
	if l.peek() == '0' && (l.peek2() == 'x' || l.peek2() == 'X') {
		l.advance()
		l.advance()
		for l.off < len(l.src) && isHexDigit(l.peek()) {
			l.advance()
		}
		return Token{Kind: TokInt, Text: l.src[start:l.off], Pos: pos}, nil
	}
	for l.off < len(l.src) && isDigit(l.peek()) {
		l.advance()
	}
	dots := 0
	for l.peek() == '.' && isDigit(l.peek2()) {
		dots++
		l.advance()
		for l.off < len(l.src) && isDigit(l.peek()) {
			l.advance()
		}
		if dots == 3 {
			return Token{Kind: TokIP, Text: l.src[start:l.off], Pos: pos}, nil
		}
	}
	switch dots {
	case 0:
		return Token{Kind: TokInt, Text: l.src[start:l.off], Pos: pos}, nil
	case 1:
		return Token{Kind: TokFloat, Text: l.src[start:l.off], Pos: pos}, nil
	}
	return Token{}, errf(pos, "malformed numeric literal %q", l.src[start:l.off])
}

func isHexDigit(c byte) bool {
	return isDigit(c) || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

func (l *Lexer) lexString(pos Pos) (Token, error) {
	quote := l.advance()
	var b strings.Builder
	for {
		if l.off >= len(l.src) {
			return Token{}, errf(pos, "unterminated string literal")
		}
		c := l.advance()
		switch {
		case c == quote:
			return Token{Kind: TokString, Text: b.String(), Pos: pos}, nil
		case c == '\\' && l.off < len(l.src):
			e := l.advance()
			switch e {
			case 'n':
				b.WriteByte('\n')
			case 't':
				b.WriteByte('\t')
			case 'r':
				b.WriteByte('\r')
			case '\\', '\'', '"':
				b.WriteByte(e)
			case '0':
				b.WriteByte(0)
			default:
				// Preserve unknown escapes verbatim: regex literals like
				// '^[^\n]*HTTP/1.*' pass \n through the 'n' case above and
				// everything else (e.g. \d) through here unchanged.
				b.WriteByte('\\')
				b.WriteByte(e)
			}
		default:
			b.WriteByte(c)
		}
	}
}

// Tokenize scans the whole input, for tests and tooling.
func Tokenize(src string) ([]Token, error) {
	l := NewLexer(src)
	var toks []Token
	for {
		t, err := l.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}
