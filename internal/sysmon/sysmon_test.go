package sysmon

import (
	"testing"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// fakeProvider serves scripted snapshots.
type fakeProvider struct {
	nodes  []rts.NodeStats
	ifaces []rts.IfaceStats
}

func (f *fakeProvider) Stats() []rts.NodeStats       { return f.nodes }
func (f *fakeProvider) IfaceStats() []rts.IfaceStats { return f.ifaces }

func collect(dst *[]exec.Message) exec.Emit {
	return func(m exec.Message) { *dst = append(*dst, m) }
}

func col(t *testing.T, s *schema.Schema, name string) int {
	t.Helper()
	i, _ := s.Col(name)
	if i < 0 {
		t.Fatalf("schema %s has no column %s", s.Name, name)
	}
	return i
}

func TestNodeSamplerDeltas(t *testing.T) {
	prov := &fakeProvider{}
	s := NewNodeSampler(prov, 1_000_000)
	out := s.OutSchema()
	iRing := col(t, out, "ringDrop")
	iTotal := col(t, out, "totalRingDrop")
	iName := col(t, out, "name")
	iTS := col(t, out, "ts")

	var msgs []exec.Message
	mk := func(ring, in uint64) []rts.NodeStats {
		ns := rts.NodeStats{Name: "q1", Level: core.LevelLFTA, RingDrop: ring}
		ns.Op.In = in
		return []rts.NodeStats{ns}
	}

	prov.nodes = mk(5, 10)
	s.Tick(1_000_000, collect(&msgs))
	prov.nodes = mk(12, 30)
	s.Tick(1_500_000, collect(&msgs)) // interval not elapsed: no sample
	s.Tick(2_000_000, collect(&msgs))
	prov.nodes = mk(12, 41)
	s.Flush(2_300_000, collect(&msgs)) // final sample regardless of interval

	var rows []schema.Tuple
	hbs := 0
	for _, m := range msgs {
		if m.IsHeartbeat() {
			hbs++
			continue
		}
		rows = append(rows, m.Tuple)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3 (one per elapsed sample + flush)", len(rows))
	}
	if hbs != 3 {
		t.Errorf("heartbeats = %d, want one per sample", hbs)
	}

	// Per-interval deltas sum to the final total.
	var sum uint64
	for _, r := range rows {
		if r[iName].Str() != "q1" {
			t.Fatalf("name = %q", r[iName].Str())
		}
		sum += r[iRing].Uint()
	}
	if sum != 12 {
		t.Errorf("sum of ringDrop deltas = %d, want final total 12", sum)
	}
	if got := rows[len(rows)-1][iTotal].Uint(); got != 12 {
		t.Errorf("final totalRingDrop = %d, want 12", got)
	}
	wantDeltas := []uint64{5, 7, 0}
	for i, w := range wantDeltas {
		if rows[i][iRing].Uint() != w {
			t.Errorf("row %d ringDrop delta = %d, want %d", i, rows[i][iRing].Uint(), w)
		}
	}

	// The declared orderings hold over the emitted rows: ts is increasing
	// stream-wide, totals are increasing within each name group.
	tsCheck := schema.NewOrderChecker(out.Cols[iTS].Ordering, nil)
	totCheck := schema.NewOrderChecker(out.Cols[iTotal].Ordering, func(tp schema.Tuple) string {
		return tp[iName].Str()
	})
	for _, r := range rows {
		if err := tsCheck.Observe(r[iTS], r); err != nil {
			t.Errorf("ts ordering: %v", err)
		}
		if err := totCheck.Observe(r[iTotal], r); err != nil {
			t.Errorf("totalRingDrop ordering: %v", err)
		}
	}
}

func TestNodeSamplerBatchTelemetryDeltas(t *testing.T) {
	prov := &fakeProvider{}
	s := NewNodeSampler(prov, 1_000_000)
	out := s.OutSchema()
	iHB := col(t, out, "hbDrop")
	iBatches := col(t, out, "batches")
	iTuples := col(t, out, "batchTuples")
	iSize := col(t, out, "flushSize")
	iHBF := col(t, out, "flushHB")
	iWin := col(t, out, "flushWindow")

	var msgs []exec.Message
	mk := func(scale uint64) []rts.NodeStats {
		return []rts.NodeStats{{
			Name: "q1", Level: core.LevelLFTA,
			HBDrop: 2 * scale, Batches: 10 * scale, BatchTuples: 100 * scale,
			FlushSize: 3 * scale, FlushHB: 4 * scale, FlushWindow: 5 * scale,
		}}
	}
	prov.nodes = mk(1)
	s.Tick(1_000_000, collect(&msgs))
	prov.nodes = mk(3)
	s.Tick(2_000_000, collect(&msgs))

	var rows []schema.Tuple
	for _, m := range msgs {
		if !m.IsHeartbeat() {
			rows = append(rows, m.Tuple)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Second row carries the movement between snapshots: scale 1 → 3.
	want := map[string][2]int{
		"hbDrop": {iHB, 4}, "batches": {iBatches, 20}, "batchTuples": {iTuples, 200},
		"flushSize": {iSize, 6}, "flushHB": {iHBF, 8}, "flushWindow": {iWin, 10},
	}
	for name, w := range want {
		if got := rows[1][w[0]].Uint(); got != uint64(w[1]) {
			t.Errorf("%s delta = %d, want %d", name, got, w[1])
		}
	}
}

func TestNodeSamplerCounterResetClampsToZero(t *testing.T) {
	prov := &fakeProvider{}
	s := NewNodeSampler(prov, 1_000_000)
	out := s.OutSchema()
	iIn := col(t, out, "tuplesIn")

	var msgs []exec.Message
	ns := rts.NodeStats{Name: "q"}
	ns.Op.In = 100
	prov.nodes = []rts.NodeStats{ns}
	s.Tick(1_000_000, collect(&msgs))
	ns.Op.In = 40 // node replaced under the same name: counter went backwards
	prov.nodes = []rts.NodeStats{ns}
	s.Tick(2_000_000, collect(&msgs))

	var rows []schema.Tuple
	for _, m := range msgs {
		if !m.IsHeartbeat() {
			rows = append(rows, m.Tuple)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if got := rows[1][iIn].Uint(); got != 0 {
		t.Errorf("delta after reset = %d, want 0 (no wraparound)", got)
	}
}

func TestIfaceSamplerDeltasAndSchema(t *testing.T) {
	prov := &fakeProvider{}
	s := NewIfaceSampler(prov, 1_000_000)
	out := s.OutSchema()
	iPkts := col(t, out, "packets")
	iTotal := col(t, out, "totalPackets")
	iLive := col(t, out, "livelocked")

	if err := out.Validate(); err != nil {
		t.Fatalf("IfaceStats schema invalid: %v", err)
	}
	if err := NodeStatsSchema().Validate(); err != nil {
		t.Fatalf("NodeStats schema invalid: %v", err)
	}

	var msgs []exec.Message
	mk := func(pkts uint64, live bool) []rts.IfaceStats {
		return []rts.IfaceStats{{Name: "eth0", Clock: pkts, Packets: pkts, Offered: pkts, Livelocked: live}}
	}
	prov.ifaces = mk(10, false)
	s.Tick(1_000_000, collect(&msgs))
	prov.ifaces = mk(25, true)
	s.Tick(2_000_000, collect(&msgs))

	var rows []schema.Tuple
	for _, m := range msgs {
		if !m.IsHeartbeat() {
			rows = append(rows, m.Tuple)
		}
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	if rows[0][iPkts].Uint() != 10 || rows[1][iPkts].Uint() != 15 {
		t.Errorf("packet deltas = %d, %d; want 10, 15", rows[0][iPkts].Uint(), rows[1][iPkts].Uint())
	}
	if rows[1][iTotal].Uint() != 25 {
		t.Errorf("totalPackets = %d, want 25", rows[1][iTotal].Uint())
	}
	if rows[0][iLive].Bool() || !rows[1][iLive].Bool() {
		t.Errorf("livelocked flags = %v, %v; want false, true", rows[0][iLive].Bool(), rows[1][iLive].Bool())
	}
}

func TestSamplerHeartbeatOnDemand(t *testing.T) {
	s := NewNodeSampler(&fakeProvider{}, 1_000_000)
	var msgs []exec.Message
	s.Heartbeat(0, collect(&msgs)) // clock has not moved: nothing to bound
	if len(msgs) != 0 {
		t.Fatalf("heartbeat at clock 0 emitted %d messages", len(msgs))
	}
	s.Heartbeat(3_000_000, collect(&msgs))
	if len(msgs) != 1 || !msgs[0].IsHeartbeat() {
		t.Fatalf("msgs = %v", msgs)
	}
	if b := msgs[0].Bounds[0]; b.Uint() != 3_000_000 {
		t.Errorf("ts bound = %v, want 3000000", b)
	}
}
