package gigascope

import (
	"testing"
	"time"

	"gigascope/internal/faultinject"
	"gigascope/internal/schema"
)

// fwdOp is a pass-through StreamOperator for the user-node fault tests.
type fwdOp struct{ out *schema.Schema }

func (o *fwdOp) Ports() int                { return 1 }
func (o *fwdOp) OutSchema() *schema.Schema { return o.out }
func (o *fwdOp) Push(port int, m Message, emit Emit) error {
	emit(m)
	return nil
}
func (o *fwdOp) FlushAll(emit Emit) error { return nil }

func tupleEq(a, b Tuple) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Type != b[i].Type || a[i].U != b[i].U || a[i].F != b[i].F || string(a[i].B) != string(b[i].B) {
			return false
		}
	}
	return true
}

// TestFaultInjectionAcceptance is the robustness acceptance path: with the
// seeded injector at default fault rates AND a query node that panics, no
// panic escapes, the faulting query shows up quarantined in
// SYSMON.NodeStats, and every other query's output is byte-identical to
// the same run without the panicking node.
func TestFaultInjectionAcceptance(t *testing.T) {
	run := func(plantPanic bool) (filterRows, aggRows []Tuple, quarantinedSeen map[string]bool, sys *System) {
		sys, err := New(Config{SelfMonitor: true, MonitorIntervalUsec: 500_000})
		if err != nil {
			t.Fatal(err)
		}
		sys.MustAddQuery(`
			DEFINE { query_name ports; }
			SELECT time, srcIP, destPort FROM eth0.TCP WHERE destPort = 80`, nil)
		sys.MustAddQuery(`
			DEFINE { query_name persec; }
			SELECT tb, count(*) FROM eth0.TCP GROUP BY time as tb`, nil)
		if plantPanic {
			out, ok := sys.Catalog().Lookup("ports")
			if !ok {
				t.Fatal("ports schema missing")
			}
			fop := &faultinject.FaultyOp{
				Inner: &fwdOp{out: out}, FailAt: 5, FailEvery: 40,
				Mode: faultinject.FailPanic,
			}
			if err := sys.AddUserNode("relay", fop, []string{"ports"}); err != nil {
				t.Fatal(err)
			}
		}
		// The same seed in both runs: identical fault placement, so the
		// sibling queries see bit-identical dirty traffic.
		sys.BindFaults("eth0", NewFaultInjector(DefaultFaultConfig(99)))

		filterSub, err := sys.Subscribe("ports", 8192)
		if err != nil {
			t.Fatal(err)
		}
		aggSub, err := sys.Subscribe("persec", 8192)
		if err != nil {
			t.Fatal(err)
		}
		statsSub, err := sys.SubscribeStats(16384)
		if err != nil {
			t.Fatal(err)
		}
		if err := sys.Start(); err != nil {
			t.Fatal(err)
		}

		// 2000 packets over ~4s of virtual time, in poll windows of 50.
		const n, window = 2000, 50
		ps := make([]*Packet, 0, window)
		for i := 0; i < n; i++ {
			port := uint16(80)
			if i%3 == 0 {
				port = 443
			}
			p := BuildTCP(1_000_000+uint64(i)*2_000, TCPSpec{
				SrcIP: 0x0a000000 + uint32(i%200), DstIP: 0x0a000002,
				SrcPort: 30000, DstPort: port, Payload: []byte("x"),
			})
			ps = append(ps, &p)
			if len(ps) == window {
				sys.InjectBatch("eth0", ps)
				ps = ps[:0]
			}
			if plantPanic && i == n/2 {
				// The relay quarantines on its own goroutine; wait for the
				// flag so the second half's telemetry samples observe it.
				// Wall-clock only — the virtual-time traffic is unchanged.
				deadline := time.Now().Add(5 * time.Second)
				for time.Now().Before(deadline) {
					quar := false
					for _, ns := range sys.Stats() {
						if ns.Name == "relay" && ns.Quarantined {
							quar = true
						}
					}
					if quar {
						break
					}
					time.Sleep(time.Millisecond)
				}
			}
		}
		sys.Stop()

		drainTuples := func(sub *Subscription) []Tuple {
			var out []Tuple
			for b := range sub.C {
				for _, m := range b {
					if !m.IsHeartbeat() {
						out = append(out, m.Tuple)
					}
				}
			}
			return out
		}
		filterRows = drainTuples(filterSub)
		aggRows = drainTuples(aggSub)

		// Which nodes did SYSMON.NodeStats report quarantined?
		nodeSchema, ok := sys.Catalog().Lookup(StreamNodeStats)
		if !ok {
			t.Fatal("SYSMON.NodeStats not in catalog")
		}
		qCol, _ := nodeSchema.Col("quarantined")
		rCol, _ := nodeSchema.Col("quarReason")
		if qCol < 0 || rCol < 0 {
			t.Fatal("SYSMON.NodeStats lacks quarantine columns")
		}
		quarantinedSeen = make(map[string]bool)
		for _, row := range drainTuples(statsSub) {
			if row[qCol].Uint() != 0 {
				quarantinedSeen[row[1].Str()] = true
			}
		}
		return filterRows, aggRows, quarantinedSeen, sys
	}

	cleanFilter, cleanAgg, cleanQuar, _ := run(false)
	faultFilter, faultAgg, faultQuar, sys := run(true)

	if len(cleanFilter) == 0 || len(cleanAgg) == 0 {
		t.Fatalf("baseline produced no output: filter=%d agg=%d", len(cleanFilter), len(cleanAgg))
	}
	if len(cleanQuar) != 0 {
		t.Fatalf("dirty traffic alone quarantined nodes: %v", cleanQuar)
	}
	// Sibling outputs are byte-identical despite a panicking node in the
	// same system.
	if len(faultFilter) != len(cleanFilter) {
		t.Fatalf("filter rows diverged: %d vs %d", len(faultFilter), len(cleanFilter))
	}
	for i := range cleanFilter {
		if !tupleEq(cleanFilter[i], faultFilter[i]) {
			t.Fatalf("filter row %d diverged: %v vs %v", i, cleanFilter[i], faultFilter[i])
		}
	}
	if len(faultAgg) != len(cleanAgg) {
		t.Fatalf("agg rows diverged: %d vs %d", len(faultAgg), len(cleanAgg))
	}
	for i := range cleanAgg {
		if !tupleEq(cleanAgg[i], faultAgg[i]) {
			t.Fatalf("agg row %d diverged: %v vs %v", i, cleanAgg[i], faultAgg[i])
		}
	}
	// The faulting node is quarantined and the telemetry stream says so.
	if !faultQuar["relay"] {
		t.Fatalf("relay not reported quarantined in SYSMON.NodeStats: %v", faultQuar)
	}
	for _, ns := range sys.Stats() {
		if ns.Name == "relay" {
			if !ns.Quarantined || ns.Quarantines == 0 {
				t.Fatalf("relay stats = %+v", ns)
			}
			continue
		}
		if ns.Quarantined || ns.Quarantines != 0 {
			t.Fatalf("innocent node %s quarantined: %+v", ns.Name, ns)
		}
	}
}
