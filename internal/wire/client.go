package wire

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"gigascope/internal/exec"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// DegradePolicy selects what a Client does when its peer is declared
// dead (reconnect attempts keep failing).
type DegradePolicy int

const (
	// DegradeHold keeps retrying forever with capped backoff; the local
	// stream stays open, so downstream operators simply wait (a merge
	// over several partitions stalls until the peer returns — correct
	// answers, unbounded latency).
	DegradeHold DegradePolicy = iota
	// DegradeDropPartition declares the peer dead after DeadAfter
	// consecutive failed dials and closes the local stream: downstream
	// merges see the port end (PortDone) and continue over the surviving
	// partitions — bounded latency, explicitly incomplete answers, with
	// the loss accounted in SYSMON's gap columns.
	DegradeDropPartition
)

// Client states, surfaced as the SYSMON peerState column.
const (
	stateConnecting int32 = iota
	stateConnected
	stateBackoff
	stateDead
	stateDone   // peer finished the stream cleanly (fin)
	stateClosed // local Close
)

func stateName(s int32) string {
	switch s {
	case stateConnecting:
		return "connecting"
	case stateConnected:
		return "connected"
	case stateBackoff:
		return "backoff"
	case stateDead:
		return "dead"
	case stateDone:
		return "done"
	case stateClosed:
		return "closed"
	}
	return "?"
}

// ClientConfig tunes a wire client.
type ClientConfig struct {
	// Network/Addr locate the peer ("tcp", "unix").
	Network string
	Addr    string
	// Stream is the remote stream name to subscribe to.
	Stream string
	// LocalName is the name the stream registers under locally
	// (default: Stream). Queries read FROM LocalName.
	LocalName string

	// DialTimeout bounds each dial plus handshake. Default 2s.
	DialTimeout time.Duration
	// ReadTimeout is the per-read deadline: with the server quiet, each
	// expiry is one missed heartbeat. Size it above the server's
	// keepalive interval. Default 1s.
	ReadTimeout time.Duration
	// WriteTimeout bounds heartbeat-request writes. Default 2s.
	WriteTimeout time.Duration
	// HBMissLimit is how many consecutive read timeouts declare the
	// connection stalled (then the reconnect machinery takes over).
	// Default 3.
	HBMissLimit int

	// BackoffMin/BackoffMax bound the reconnect backoff: the delay
	// starts at BackoffMin, doubles per failed attempt, and caps at
	// BackoffMax; each sleep is jittered to [d/2, d). Defaults 50ms/5s.
	BackoffMin time.Duration
	BackoffMax time.Duration
	// Seed seeds the jitter PRNG (deterministic backoff in tests).
	Seed int64

	// Degrade selects the peer-dead policy; DeadAfter is the consecutive
	// failed-dial threshold for DegradeDropPartition (default 8).
	Degrade   DegradePolicy
	DeadAfter int

	// MaxFrame caps inbound frames (DefaultMaxFrame when 0).
	MaxFrame int
	// WrapConn, when non-nil, wraps every dialed connection — the
	// fault-injection hook.
	WrapConn func(net.Conn) net.Conn
}

func (c ClientConfig) dialTimeout() time.Duration {
	if c.DialTimeout <= 0 {
		return 2 * time.Second
	}
	return c.DialTimeout
}

func (c ClientConfig) readTimeout() time.Duration {
	if c.ReadTimeout <= 0 {
		return time.Second
	}
	return c.ReadTimeout
}

func (c ClientConfig) writeTimeout() time.Duration {
	if c.WriteTimeout <= 0 {
		return 2 * time.Second
	}
	return c.WriteTimeout
}

func (c ClientConfig) hbMissLimit() int {
	if c.HBMissLimit <= 0 {
		return 3
	}
	return c.HBMissLimit
}

func (c ClientConfig) backoffMin() time.Duration {
	if c.BackoffMin <= 0 {
		return 50 * time.Millisecond
	}
	return c.BackoffMin
}

func (c ClientConfig) backoffMax() time.Duration {
	if c.BackoffMax <= 0 {
		return 5 * time.Second
	}
	return c.BackoffMax
}

func (c ClientConfig) deadAfter() int {
	if c.DeadAfter <= 0 {
		return 8
	}
	return c.DeadAfter
}

func (c ClientConfig) maxFrame() int {
	if c.MaxFrame <= 0 {
		return DefaultMaxFrame
	}
	return c.MaxFrame
}

// Client imports one remote stream as a local source node. Connect
// performs the first dial and schema handshake synchronously (the
// stream must be registered before local queries can compile against
// it); a background goroutine then owns the connection and the failure
// machinery. The client is the stream's rts.PeerMonitor: its state and
// counters surface as the peerState / reconnects / gapTuples / hbMisses
// columns of SYSMON.NodeStats.
type Client struct {
	cfg ClientConfig
	src *rts.RemoteSource
	fp  uint64

	// Gap accounting. instance/seq0/received belong to the run
	// goroutine: seq0 is the stream's cumulative published-tuple count
	// at the current connection's handshake, received the tuples
	// delivered since. On reconnect to the same exporter incarnation,
	// newSeq0 − (seq0 + received) is exactly the tuples published while
	// we were away or lost in flight — including any shed at the
	// server-side ring (exact up to one batch in flight at handshake
	// time).
	instance uint64
	seq0     uint64
	received uint64

	state      atomic.Int32
	reconnects atomic.Uint64
	gapTuples  atomic.Uint64
	gapEvents  atomic.Uint64
	hbMisses   atomic.Uint64
	dialFails  atomic.Uint64
	lastSeq    atomic.Uint64

	// lastBounds remembers the most recent heartbeat bounds received
	// from the peer; the gap punctuation injected on reconnect reuses
	// them (unit-correct per column, and claiming no progress beyond
	// what the peer already announced). Run-goroutine only.
	lastBounds schema.Tuple

	mu     sync.Mutex // guards conn for hbreq writes vs run-goroutine swaps
	conn   net.Conn
	stop   chan struct{}
	done   chan struct{}
	closed atomic.Bool
	rng    *rand.Rand
}

var errStalled = errors.New("wire: heartbeat misses exceeded limit")
var errFin = errors.New("wire: stream finished")
var errStopped = errors.New("wire: client closed")

// Connect dials the peer, performs the schema handshake, registers the
// stream as a local source node on m, and starts the connection
// goroutine. The returned client's stream is immediately usable in
// local queries (FROM LocalName).
func Connect(m *rts.Manager, cfg ClientConfig) (*Client, error) {
	if cfg.Stream == "" {
		return nil, fmt.Errorf("wire: ClientConfig.Stream required")
	}
	if cfg.LocalName == "" {
		cfg.LocalName = cfg.Stream
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	c := &Client{
		cfg:  cfg,
		stop: make(chan struct{}),
		done: make(chan struct{}),
		rng:  rand.New(rand.NewSource(seed)),
	}
	conn, hs, err := c.dial()
	if err != nil {
		return nil, fmt.Errorf("wire: connect %s/%s: %w", cfg.Network, cfg.Addr, err)
	}
	c.fp = hs.Fingerprint
	c.instance = hs.Instance
	c.seq0 = hs.Seq
	c.lastSeq.Store(hs.Seq)
	src, err := m.AddRemoteSource(cfg.LocalName, hs.Schema, c)
	if err != nil {
		conn.Close()
		return nil, err
	}
	c.src = src
	src.SetRequestHeartbeat(c.requestHeartbeat)
	c.setConn(conn)
	c.state.Store(stateConnected)
	go c.run(conn)
	return c, nil
}

// Source returns the local source node handle the remote stream
// publishes through.
func (c *Client) Source() *rts.RemoteSource { return c.src }

// Done is closed when the connection goroutine exits for good: clean
// stream end (fin), peer declared dead, or Close. The local stream is
// closed by then, so downstream queries have flushed.
func (c *Client) Done() <-chan struct{} { return c.done }

// PeerStats implements rts.PeerMonitor: the live failure-machinery
// counters SYSMON surfaces.
func (c *Client) PeerStats() rts.PeerStats {
	return rts.PeerStats{
		State:      stateName(c.state.Load()),
		Reconnects: c.reconnects.Load(),
		GapTuples:  c.gapTuples.Load(),
		GapEvents:  c.gapEvents.Load(),
		HBMisses:   c.hbMisses.Load(),
	}
}

// Close tears the client down promptly — including mid-backoff-sleep —
// waits for the connection goroutine to exit, and closes the local
// stream so downstream operators flush.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		<-c.done
		return nil
	}
	close(c.stop)
	c.mu.Lock()
	if c.conn != nil {
		c.conn.Close()
	}
	c.mu.Unlock()
	<-c.done
	// Preserve terminal states reached before Close.
	s := c.state.Load()
	if s != stateDead && s != stateDone {
		c.state.Store(stateClosed)
	}
	c.src.Close()
	return nil
}

func (c *Client) stopped() bool {
	select {
	case <-c.stop:
		return true
	default:
		return false
	}
}

func (c *Client) setConn(conn net.Conn) {
	c.mu.Lock()
	c.conn = conn
	c.mu.Unlock()
}

// requestHeartbeat forwards a downstream on-demand ordering-token
// request (paper §3) to the peer as an hbreq frame. Best-effort: during
// an outage there is no peer to ask, and the reconnect gap punctuation
// serves as the ordering signal instead.
func (c *Client) requestHeartbeat() {
	c.mu.Lock()
	conn := c.conn
	c.mu.Unlock()
	if conn == nil {
		return
	}
	conn.SetWriteDeadline(time.Now().Add(c.cfg.writeTimeout()))
	conn.Write(endFrame(beginFrame(make([]byte, 0, 8), frameHBReq)))
}

// noteBounds tracks the last heartbeat bounds the peer announced (run
// goroutine only; readLoop calls it before republishing each batch).
func (c *Client) noteBounds(b exec.Batch) {
	for i := range b {
		if b[i].IsHeartbeat() {
			c.lastBounds = b[i].Bounds
		}
	}
}

// lastHeartbeatBounds returns the bounds for a gap punctuation: the last
// bounds the peer announced — a unit-correct claim of no progress beyond
// what downstream already saw — or nil before any heartbeat arrived
// (PublishGap substitutes all-NULL bounds: "no information").
func (c *Client) lastHeartbeatBounds() schema.Tuple {
	return c.lastBounds
}

// dial opens one connection and runs the handshake under DialTimeout.
func (c *Client) dial() (net.Conn, schemaFrame, error) {
	var hs schemaFrame
	d := net.Dialer{Timeout: c.cfg.dialTimeout()}
	conn, err := d.Dial(c.cfg.Network, c.cfg.Addr)
	if err != nil {
		return nil, hs, err
	}
	if c.cfg.WrapConn != nil {
		conn = c.cfg.WrapConn(conn)
	}
	conn.SetDeadline(time.Now().Add(c.cfg.dialTimeout()))
	hello := helloFrame{
		Version:  Version,
		Instance: c.instance,
		Seq:      c.seq0 + c.received,
		Stream:   c.cfg.Stream,
	}
	if _, err := conn.Write(endFrame(encodeHello(beginFrame(make([]byte, 0, 64), frameHello), hello))); err != nil {
		conn.Close()
		return nil, hs, err
	}
	var buf []byte
	typ, payload, err := readFrame(conn, c.cfg.maxFrame(), &buf)
	if err != nil {
		conn.Close()
		return nil, hs, err
	}
	switch typ {
	case frameSchema:
		hs, err = decodeSchemaFrame(payload)
		if err != nil {
			conn.Close()
			return nil, hs, err
		}
	case frameError:
		conn.Close()
		return nil, hs, fmt.Errorf("wire: peer rejected subscription: %s", payload)
	default:
		conn.Close()
		return nil, hs, decodeErrf("unexpected handshake frame %q", typ)
	}
	conn.SetDeadline(time.Time{})
	return conn, hs, nil
}

// run owns the connection lifecycle: read until failure, reconnect with
// backoff, repeat — until a clean fin, a dead-peer verdict, or Close.
func (c *Client) run(conn net.Conn) {
	defer close(c.done)
	for {
		err := c.readLoop(conn)
		c.setConn(nil)
		conn.Close()
		switch {
		case errors.Is(err, errStopped) || c.stopped():
			return
		case errors.Is(err, errFin):
			c.state.Store(stateDone)
			c.src.Close()
			return
		}
		// Connection failed (error, stall, or torn frame): reconnect.
		conn = c.reconnect()
		if conn == nil {
			if c.stopped() {
				return
			}
			// Peer declared dead (DegradeDropPartition, or the stream's
			// schema changed under us). Mark the discontinuity, then
			// apply the degrade policy: close the local stream so
			// downstream merges get PortDone and continue without this
			// partition.
			c.gapEvents.Add(1)
			c.src.PublishGap(c.lastHeartbeatBounds())
			c.state.Store(stateDead)
			c.src.Close()
			return
		}
	}
}

// readLoop pumps one live connection: batches are republished locally
// 1:1 (message order preserved), keepalives advance the local virtual
// clock, and read-deadline expiries count heartbeat misses until the
// connection is declared stalled.
func (c *Client) readLoop(conn net.Conn) error {
	misses := 0
	var buf []byte
	for {
		if c.stopped() {
			return errStopped
		}
		conn.SetReadDeadline(time.Now().Add(c.cfg.readTimeout()))
		typ, payload, err := readFrame(conn, c.cfg.maxFrame(), &buf)
		if err != nil {
			if c.stopped() {
				return errStopped
			}
			var ne net.Error
			if errors.As(err, &ne) && ne.Timeout() {
				misses++
				c.hbMisses.Add(1)
				if misses >= c.cfg.hbMissLimit() {
					return errStalled
				}
				continue
			}
			return err
		}
		misses = 0
		switch typ {
		case frameBatch:
			clock, b, nT, err := decodeBatch(payload)
			if err != nil {
				// Corrupt peer output: treat as a connection failure and
				// resync through the reconnect handshake.
				return err
			}
			c.noteBounds(b)
			c.received += uint64(nT)
			c.src.Publish(b, nT, clock)
		case frameKeepalive:
			clock, seq, err := decodeKeepalive(payload)
			if err != nil {
				return err
			}
			c.lastSeq.Store(seq)
			// The manager's clock high-water mark is monotone, so a
			// skewed-backward keepalive is absorbed; a skewed-forward one
			// advances local virtual time early (windows close sooner) —
			// visible, bounded damage.
			c.src.Note(clock)
		case frameFin:
			return errFin
		case frameError:
			return fmt.Errorf("wire: peer error: %s", payload)
		}
	}
}

// reconnect runs the backoff loop: jittered doubling delay, redial,
// fingerprint check, gap accounting. Returns nil when stopped, when the
// schema fingerprint no longer matches, or when DegradeDropPartition's
// failure budget is exhausted.
func (c *Client) reconnect() net.Conn {
	backoff := c.cfg.backoffMin()
	fails := 0
	for {
		c.state.Store(stateBackoff)
		// Jitter to [backoff/2, backoff): a fleet of clients whose peer
		// died together must not redial in lockstep.
		d := backoff/2 + time.Duration(c.rng.Int63n(int64(backoff/2)+1))
		select {
		case <-c.stop:
			return nil
		case <-time.After(d):
		}
		c.state.Store(stateConnecting)
		conn, hs, err := c.dial()
		if err != nil {
			c.dialFails.Add(1)
			fails++
			if backoff < c.cfg.backoffMax() {
				backoff *= 2
				if backoff > c.cfg.backoffMax() {
					backoff = c.cfg.backoffMax()
				}
			}
			if c.cfg.Degrade == DegradeDropPartition && fails >= c.cfg.deadAfter() {
				return nil
			}
			continue
		}
		if hs.Fingerprint != c.fp {
			// The stream was redefined while we were away; the local plan
			// was compiled against the old shape. Resuming would feed
			// queries tuples they mis-interpret — refuse and degrade.
			conn.Close()
			return nil
		}
		var gap uint64
		if hs.Instance == c.instance {
			if have := c.seq0 + c.received; hs.Seq > have {
				gap = hs.Seq - have
			}
		}
		// Same incarnation: gap is the exact published-while-away count.
		// New incarnation: the exporter restarted and its counters reset;
		// the loss is real but unquantifiable — record the gap event with
		// whatever the fresh counter implies (usually 0) and move on.
		c.instance = hs.Instance
		c.seq0 = hs.Seq
		c.received = 0
		c.lastSeq.Store(hs.Seq)
		c.reconnects.Add(1)
		c.gapEvents.Add(1)
		c.gapTuples.Add(gap)
		c.src.PublishGap(c.lastHeartbeatBounds())
		c.setConn(conn)
		c.state.Store(stateConnected)
		return conn
	}
}
