package pkt

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFragmentReassembleRoundTrip(t *testing.T) {
	payload := bytes.Repeat([]byte("abcdefgh"), 200) // 1600B
	orig := BuildTCP(1000, TCPSpec{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 80, Payload: payload})
	frags, err := Fragment(&orig, 600)
	if err != nil {
		t.Fatal(err)
	}
	if len(frags) < 3 {
		t.Fatalf("%d fragments", len(frags))
	}
	for i, f := range frags {
		if err := Verify(&f); err != nil {
			t.Errorf("fragment %d invalid: %v", i, err)
		}
		ff, _ := f.U16(EthHeaderLen + 6)
		mf := ff&0x2000 != 0
		if (i < len(frags)-1) != mf {
			t.Errorf("fragment %d MF = %v", i, mf)
		}
		if i > 0 && ff&0x1fff == 0 {
			t.Errorf("fragment %d offset = 0", i)
		}
	}
	got, err := Reassemble(frags)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got.Data, orig.Data) {
		t.Error("reassembled frame differs from original")
	}
	if err := Verify(&got); err != nil {
		t.Errorf("reassembled frame invalid: %v", err)
	}
}

func TestFragmentNoOpWhenSmall(t *testing.T) {
	p := BuildTCP(1, TCPSpec{SrcIP: 1, DstIP: 2, DstPort: 80, Payload: []byte("tiny")})
	frags, err := Fragment(&p, 1500)
	if err != nil || len(frags) != 1 {
		t.Fatalf("frags = %d, %v", len(frags), err)
	}
	if !bytes.Equal(frags[0].Data, p.Data) {
		t.Error("small packet altered")
	}
}

func TestFragmentErrors(t *testing.T) {
	p := BuildTCP(1, TCPSpec{SrcIP: 1, DstIP: 2, DstPort: 80, Payload: make([]byte, 100)})
	if _, err := Fragment(&p, 20); err == nil {
		t.Error("MTU 20 accepted")
	}
	snapped := p.Snap(30)
	if _, err := Fragment(&snapped, 600); err == nil {
		t.Error("snapped capture fragmented")
	}
	bad := Packet{TS: 1, WireLen: 10, Data: make([]byte, 10)}
	if _, err := Fragment(&bad, 600); err == nil {
		t.Error("non-IPv4 fragmented")
	}
}

func TestReassembleErrors(t *testing.T) {
	if _, err := Reassemble(nil); err == nil {
		t.Error("empty fragment list accepted")
	}
	payload := bytes.Repeat([]byte{1}, 1200)
	p := BuildTCP(1, TCPSpec{SrcIP: 1, DstIP: 2, DstPort: 80, Payload: payload})
	frags, _ := Fragment(&p, 600)
	if _, err := Reassemble(frags[1:]); err == nil {
		t.Error("missing first fragment accepted")
	}
	if _, err := Reassemble(frags[:len(frags)-1]); err == nil {
		t.Error("missing last fragment accepted")
	}
}

func TestFragmentRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		payload := make([]byte, 100+r.Intn(3000))
		r.Read(payload)
		orig := BuildUDP(uint64(r.Intn(1e6)), UDPSpec{
			SrcIP: r.Uint32(), DstIP: r.Uint32(),
			SrcPort: uint16(r.Intn(65536)), DstPort: 53, Payload: payload,
		})
		mtu := 100 + r.Intn(800)
		frags, err := Fragment(&orig, mtu)
		if err != nil {
			return false
		}
		// Shuffled reassembly must reproduce the original exactly.
		r.Shuffle(len(frags), func(i, j int) { frags[i], frags[j] = frags[j], frags[i] })
		got, err := Reassemble(frags)
		return err == nil && bytes.Equal(got.Data, orig.Data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}
