// portscan_detect is an intrusion-detection style composition (one of the
// application domains the paper's introduction motivates): flag sources
// that send SYN packets to many destinations within a 10-second window.
// It composes three queries — a cheap SYN filter (pure LFTA), a per-window
// per-source aggregate, and a HAVING threshold — and changes the detection
// threshold on the fly with a query parameter (§3).
//
//	go run ./examples/portscan_detect
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New()
	if err != nil {
		log.Fatal(err)
	}

	// SYN-only filter: flags & 0x02 and not ACK. Entirely an LFTA with
	// NIC pushdown of the cheap comparisons.
	sys.MustAddQuery(`
		DEFINE { query_name syns; }
		SELECT time, srcIP, destIP, destPort
		FROM TCP
		WHERE protocol = 6 and flags & 2 = 2 and flags & 16 = 0`, nil)

	// Scan score: SYNs per source per 10-second window.
	sys.MustAddQuery(`
		DEFINE { query_name syn_rate; }
		SELECT w, srcIP, count(*) as syns
		FROM syns
		GROUP BY time/10 as w, srcIP`, nil)

	// Alerts: thresholded, with the threshold as an on-the-fly parameter.
	sys.MustAddQuery(`
		DEFINE { query_name scan_alerts; param threshold uint; }
		SELECT w, srcIP, syns
		FROM syn_rate
		WHERE syns >= $threshold`,
		map[string]gigascope.Value{"threshold": gigascope.Uint(50)})

	sub, err := sys.Subscribe("scan_alerts", 1024)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	go func() {
		// Background: normal traffic (ACKs, not SYNs). Attacker: one
		// source SYN-scanning a /24 at 200 probes/second.
		bg, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
			Seed: 3,
			Classes: []gigascope.TrafficClass{{
				Name: "normal", RateMbps: 10, PktBytes: 700, DstPort: 443,
				Proto: gigascope.ProtoTCP,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		attacker, _ := gigascope.ParseIP("10.66.6.66")
		probe := uint32(0)
		const horizon = 40_000_000 // 40 virtual seconds
		for usec := uint64(0); usec < horizon; usec += 5000 {
			bg.Until(usec, func(p *gigascope.Packet) { sys.Inject("", p) })
			// One probe every 5ms.
			victim, _ := gigascope.ParseIP("192.168.7.0")
			p := gigascope.BuildTCP(usec, gigascope.TCPSpec{
				SrcIP: attacker, DstIP: victim + probe%256,
				SrcPort: 54321, DstPort: uint16(1 + probe%1024),
				Flags: 0x02, // SYN
			})
			probe++
			sys.Inject("", &p)
			if usec == 20_000_000 {
				// Raise the threshold mid-run above the scan rate; it takes
				// effect without recompiling or restarting anything.
				if err := sys.SetParams("scan_alerts", map[string]gigascope.Value{
					"threshold": gigascope.Uint(5000),
				}); err != nil {
					log.Fatal(err)
				}
			}
		}
		sys.Stop()
	}()

	fmt.Println("window  source          SYNs")
	alerts := 0
	for b := range sub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			alerts++
			fmt.Printf("%6d  %-14s %5d\n",
				m.Tuple[0].Uint(), gigascope.FormatIP(m.Tuple[1].IP()), m.Tuple[2].Uint())
		}
	}
	fmt.Printf("%d alert windows (raising the threshold to 5000 at t=20s silenced the 2000-SYN windows)\n", alerts)
}
