package schema

import (
	"testing"
	"testing/quick"
)

func TestValueConstructorsAndAccessors(t *testing.T) {
	if v := MakeBool(true); !v.Bool() || v.Type != TBool {
		t.Errorf("MakeBool(true) = %v", v)
	}
	if v := MakeBool(false); v.Bool() {
		t.Errorf("MakeBool(false).Bool() = true")
	}
	if v := MakeUint(42); v.Uint() != 42 || v.Type != TUint {
		t.Errorf("MakeUint(42) = %v", v)
	}
	if v := MakeInt(-7); v.Int() != -7 || v.Type != TInt {
		t.Errorf("MakeInt(-7) = %v", v)
	}
	if v := MakeFloat(2.5); v.Float() != 2.5 || v.Type != TFloat {
		t.Errorf("MakeFloat(2.5) = %v", v)
	}
	if v := MakeStr("abc"); v.Str() != "abc" || v.Type != TString {
		t.Errorf("MakeStr = %v", v)
	}
	if v := MakeIP(0x0a000001); v.IP() != 0x0a000001 || v.Type != TIP {
		t.Errorf("MakeIP = %v", v)
	}
	if !Null.IsNull() {
		t.Errorf("Null.IsNull() = false")
	}
}

func TestValueFloatConversions(t *testing.T) {
	if got := MakeInt(-3).Float(); got != -3 {
		t.Errorf("MakeInt(-3).Float() = %v, want -3", got)
	}
	if got := MakeUint(9).Float(); got != 9 {
		t.Errorf("MakeUint(9).Float() = %v, want 9", got)
	}
}

func TestValueCompare(t *testing.T) {
	cases := []struct {
		a, b Value
		want int
	}{
		{MakeUint(1), MakeUint(2), -1},
		{MakeUint(2), MakeUint(2), 0},
		{MakeUint(3), MakeUint(2), 1},
		{MakeInt(-1), MakeInt(1), -1},
		{MakeInt(-1), MakeUint(0), -1},
		{MakeUint(1 << 63), MakeInt(5), 1}, // uint above MaxInt64 beats any int
		{MakeInt(5), MakeUint(1 << 63), -1},
		{MakeFloat(1.5), MakeUint(2), -1},
		{MakeFloat(2.5), MakeInt(2), 1},
		{MakeStr("a"), MakeStr("b"), -1},
		{MakeStr("ab"), MakeStr("a"), 1},
		{MakeStr("a"), MakeStr("a"), 0},
		{Null, MakeUint(0), -1},
		{MakeUint(0), Null, 1},
		{Null, Null, 0},
		{MakeBool(false), MakeBool(true), -1},
		{MakeIP(0x0a000001), MakeIP(0x0a000002), -1},
	}
	for _, c := range cases {
		if got := c.a.Compare(c.b); got != c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d", c.a, c.b, got, c.want)
		}
		if got := c.b.Compare(c.a); got != -c.want {
			t.Errorf("Compare(%v, %v) = %d, want %d (antisymmetry)", c.b, c.a, got, -c.want)
		}
	}
}

func TestValueCompareAntisymmetryProperty(t *testing.T) {
	f := func(a, b uint64, sa, sb bool) bool {
		var va, vb Value
		if sa {
			va = MakeInt(int64(a))
		} else {
			va = MakeUint(a)
		}
		if sb {
			vb = MakeInt(int64(b))
		} else {
			vb = MakeUint(b)
		}
		return va.Compare(vb) == -vb.Compare(va)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestValueCloneIsolation(t *testing.T) {
	orig := MakeStr("hello")
	c := orig.Clone()
	c.B[0] = 'H'
	if orig.Str() != "hello" {
		t.Errorf("Clone shares string storage: orig = %q", orig.Str())
	}
}

func TestValueString(t *testing.T) {
	cases := []struct {
		v    Value
		want string
	}{
		{Null, "NULL"},
		{MakeBool(true), "true"},
		{MakeUint(7), "7"},
		{MakeInt(-7), "-7"},
		{MakeStr("x"), `"x"`},
		{MakeIP(0xc0a80101), "192.168.1.1"},
	}
	for _, c := range cases {
		if got := c.v.String(); got != c.want {
			t.Errorf("String(%#v) = %q, want %q", c.v, got, c.want)
		}
	}
}

func TestParseIP(t *testing.T) {
	good := map[string]uint32{
		"0.0.0.0":         0,
		"255.255.255.255": 0xffffffff,
		"10.0.0.1":        0x0a000001,
		"192.168.1.1":     0xc0a80101,
	}
	for s, want := range good {
		got, err := ParseIP(s)
		if err != nil || got != want {
			t.Errorf("ParseIP(%q) = %#x, %v; want %#x", s, got, err, want)
		}
	}
	bad := []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.", "1234.1.1.1"}
	for _, s := range bad {
		if _, err := ParseIP(s); err == nil {
			t.Errorf("ParseIP(%q) succeeded, want error", s)
		}
	}
}

func TestParseIPRoundTripProperty(t *testing.T) {
	f := func(a uint32) bool {
		got, err := ParseIP(FormatIP(a))
		return err == nil && got == a
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestParseType(t *testing.T) {
	for name, want := range map[string]Type{
		"uint": TUint, "int": TInt, "float": TFloat, "bool": TBool,
		"string": TString, "ip": TIP, "ullong": TUint, "llong": TInt,
	} {
		got, ok := ParseType(name)
		if !ok || got != want {
			t.Errorf("ParseType(%q) = %v, %v; want %v", name, got, ok, want)
		}
	}
	if _, ok := ParseType("varchar"); ok {
		t.Error("ParseType(varchar) succeeded")
	}
}
