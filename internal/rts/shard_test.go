package rts

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// shardTrace builds a trace with strictly increasing timestamps and enough
// flow diversity to spread across every shard count under test.
func shardTrace(n int) []*pkt.Packet {
	ps := make([]*pkt.Packet, n)
	for i := 0; i < n; i++ {
		p := pkt.BuildTCP(1_000_000+uint64(i)*500, pkt.TCPSpec{
			SrcIP:   0x0a000000 + uint32(i%251),
			DstIP:   0x0a010000 + uint32(i%13),
			SrcPort: uint16(20000 + i%199),
			DstPort: uint16([]int{80, 443, 8080}[i%3]),
			Payload: []byte("x"),
		})
		ps[i] = &p
	}
	return ps
}

// runSharded runs the selection + aggregation pair over the trace at one
// shard count and returns the selection rows (in delivery order) and the
// aggregation rows (as a sorted multiset).
func runSharded(t *testing.T, shards int, trace []*pkt.Packet) (sel, agg []string) {
	t.Helper()
	cat := newCatalog(t)
	m := NewManager(cat, Config{
		Shards:           shards,
		RingSize:         8192,
		HeartbeatUsec:    250_000,
		ValidateOrdering: true,
	})
	selQ := mustCompile(t, cat, `
		DEFINE { query_name shardsel; }
		SELECT timestamp, srcIP, destPort FROM eth0.tcp WHERE destPort = 80`)
	aggQ := mustCompile(t, cat, `
		DEFINE { query_name shardagg; }
		SELECT tb, srcIP, count(*) FROM eth0.tcp GROUP BY time/1 as tb, srcIP`)
	if err := m.AddQuery(selQ, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.AddQuery(aggQ, nil); err != nil {
		t.Fatal(err)
	}
	selSub, err := m.Subscribe("shardsel", 8192)
	if err != nil {
		t.Fatal(err)
	}
	aggSub, err := m.Subscribe("shardagg", 8192)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(trace); i += 64 {
		end := i + 64
		if end > len(trace) {
			end = len(trace)
		}
		m.InjectBatch("eth0", trace[i:end])
	}
	m.Stop()
	for _, row := range drain(t, selSub) {
		sel = append(sel, row.String())
	}
	for _, row := range drain(t, aggSub) {
		agg = append(agg, row.String())
	}
	sort.Strings(agg)
	for _, ns := range m.Stats() {
		if ns.RingDrop != 0 || ns.HBDrop != 0 {
			t.Fatalf("shards=%d node %s shed (ring %d, hb %d): invariance check needs a lossless run",
				shards, ns.Name, ns.RingDrop, ns.HBDrop)
		}
		if ns.OrderViolations != 0 {
			t.Errorf("shards=%d node %s: %d ordering violations", shards, ns.Name, ns.OrderViolations)
		}
	}
	return sel, agg
}

// TestShardCountInvariance is the sharding correctness anchor: shard counts
// 1, 2, 4, 8 must produce the same multiset of output tuples per query, and
// — because the selection stream's merge attribute (timestamp) is strictly
// increasing — byte-identical ordered output through the reunifying merge.
func TestShardCountInvariance(t *testing.T) {
	trace := shardTrace(2000)
	baseSel, baseAgg := runSharded(t, 1, trace)
	if len(baseSel) == 0 || len(baseAgg) == 0 {
		t.Fatalf("baseline produced no output (sel %d, agg %d)", len(baseSel), len(baseAgg))
	}
	for _, shards := range []int{2, 4, 8} {
		sel, agg := runSharded(t, shards, trace)
		if len(sel) != len(baseSel) {
			t.Fatalf("shards=%d: %d selection rows, want %d", shards, len(sel), len(baseSel))
		}
		for i := range sel {
			if sel[i] != baseSel[i] {
				t.Fatalf("shards=%d: selection row %d = %s, want %s (ordered output must be identical)",
					shards, i, sel[i], baseSel[i])
			}
		}
		if len(agg) != len(baseAgg) {
			t.Fatalf("shards=%d: %d aggregate rows, want %d", shards, len(agg), len(baseAgg))
		}
		for i := range agg {
			if agg[i] != baseAgg[i] {
				t.Fatalf("shards=%d: aggregate multiset diverges at %d: %s vs %s",
					shards, i, agg[i], baseAgg[i])
			}
		}
	}
}

// TestShardRegistryAndStats checks the sharded plumbing surface: per-shard
// streams registered under mangled names, shard indices in NodeStats, and
// per-shard packet accounting summing to the interface total.
func TestShardRegistryAndStats(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{Shards: 4})
	cq := mustCompile(t, cat, `
		DEFINE { query_name shreg; }
		SELECT timestamp, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	names := strings.Join(m.Registry(), " ")
	for i := 0; i < 4; i++ {
		if !strings.Contains(names, fmt.Sprintf("shreg#shard%d", i)) {
			t.Fatalf("registry %q lacks shard stream %d", names, i)
		}
	}
	shardSub, err := m.Subscribe("shreg#shard0", 64)
	if err != nil {
		t.Fatalf("per-shard streams must be subscribable: %v", err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	trace := shardTrace(512)
	m.InjectBatch("eth0", trace)
	m.Stop()
	drain(t, shardSub)

	shardsSeen := map[int]bool{}
	for _, ns := range m.Stats() {
		if strings.HasPrefix(ns.Name, "shreg#shard") {
			shardsSeen[ns.Shard] = true
		}
	}
	for i := 1; i <= 4; i++ {
		if !shardsSeen[i] {
			t.Errorf("no NodeStats row with Shard=%d: %v", i, shardsSeen)
		}
	}
	for _, is := range m.IfaceStats() {
		if is.Name != "eth0" {
			continue
		}
		if is.Shards != 4 {
			t.Errorf("IfaceStats.Shards = %d, want 4", is.Shards)
		}
		if is.LFTAs != 1 {
			t.Errorf("IfaceStats.LFTAs = %d, want 1 (sharded LFTA counts once)", is.LFTAs)
		}
		var sum uint64
		for _, n := range is.ShardPackets {
			sum += n
		}
		if sum != is.Packets {
			t.Errorf("ShardPackets sum %d != Packets %d", sum, is.Packets)
		}
	}
}

// TestShardSetParamsForwards checks that SetParams on a sharded query's
// original name rebinds every per-shard LFTA instance.
func TestShardSetParamsForwards(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{Shards: 2, HeartbeatUsec: 100_000})
	cq := mustCompile(t, cat, `
		DEFINE { query_name shparam; param port uint; }
		SELECT timestamp, srcIP, destPort FROM eth0.tcp WHERE destPort = $port`)
	if err := m.AddQuery(cq, map[string]schema.Value{"port": schema.MakeUint(80)}); err != nil {
		t.Fatal(err)
	}
	sub, err := m.Subscribe("shparam", 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	trace := shardTrace(300) // destPort cycles 80,443,8080: 100 hit port 80
	m.InjectBatch("eth0", trace)
	if err := m.SetParams("shparam", map[string]schema.Value{"port": schema.MakeUint(443)}); err != nil {
		t.Fatal(err)
	}
	// SetParams reaches the shard instances through their channels; give
	// the rebind a queued window boundary to land on, then replay.
	m.InjectBatch("eth0", shardTrace(300))
	m.Stop()
	rows := drain(t, sub)
	var p80, p443 int
	for _, row := range rows {
		switch row[2].Uint() {
		case 80:
			p80++
		case 443:
			p443++
		}
	}
	_ = p80
	if p443 == 0 {
		t.Fatalf("no port-443 rows after SetParams: rebind did not reach the shard instances")
	}
}

// TestSetParamsConcurrentWithStart is the regression test for the data race
// on queryNode.started: SetParams used to read the flag unsynchronized
// while Start wrote it under the manager lock. Run with -race.
func TestSetParamsConcurrentWithStart(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name racecnt; param port uint; }
		SELECT tb, count(*) FROM tcp WHERE destPort = $port GROUP BY time/10 as tb`)
	if err := m.AddQuery(cq, map[string]schema.Value{"port": schema.MakeUint(80)}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			port := uint64(80 + g)
			for {
				select {
				case <-stop:
					return
				default:
				}
				// The interesting interleaving is the started check racing
				// Start; the rebind result itself is irrelevant here.
				_ = m.SetParams("racecnt", map[string]schema.Value{"port": schema.MakeUint(port)})
			}
		}(g)
	}
	time.Sleep(time.Millisecond)
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	time.Sleep(5 * time.Millisecond)
	close(stop)
	wg.Wait()
	m.Stop()
}

// TestConcurrentMultiInterfaceInject is the regression test for concurrent
// capture: multiple goroutines injecting on several interfaces at once must
// keep each interface's virtual clock monotone and its packet accounting
// exact. Run with -race.
func TestConcurrentMultiInterfaceInject(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{HeartbeatUsec: 100_000})
	for _, iface := range []string{"eth0", "eth1"} {
		cq := mustCompile(t, cat, fmt.Sprintf(`
			DEFINE { query_name inj_%s; }
			SELECT timestamp, srcIP FROM %s.tcp WHERE destPort = 80`, iface, iface))
		if err := m.AddQuery(cq, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}

	const (
		goroutinesPerIface = 3
		packetsPerGoroutine = 400
	)
	var wg sync.WaitGroup
	for _, iface := range []string{"eth0", "eth1"} {
		for g := 0; g < goroutinesPerIface; g++ {
			wg.Add(1)
			go func(iface string, g int) {
				defer wg.Done()
				for i := 0; i < packetsPerGoroutine; i += 8 {
					var window []*pkt.Packet
					for j := i; j < i+8; j++ {
						p := pkt.BuildTCP(1_000_000+uint64(g*packetsPerGoroutine+j)*100, pkt.TCPSpec{
							SrcIP: 0x0a000000 + uint32(j), DstIP: 0x0a000002,
							SrcPort: 30000, DstPort: 80,
						})
						window = append(window, &p)
					}
					m.InjectBatch(iface, window)
				}
			}(iface, g)
		}
	}
	// Concurrent monitoring readers: interface clocks must be monotone
	// under concurrent injection.
	monStop := make(chan struct{})
	var monWG sync.WaitGroup
	monWG.Add(1)
	go func() {
		defer monWG.Done()
		lastClock := map[string]uint64{}
		for {
			for _, is := range m.IfaceStats() {
				if is.Clock < lastClock[is.Name] {
					t.Errorf("iface %s clock went backwards: %d after %d", is.Name, is.Clock, lastClock[is.Name])
					return
				}
				lastClock[is.Name] = is.Clock
			}
			select {
			case <-monStop:
				return
			default:
			}
		}
	}()
	wg.Wait()
	close(monStop)
	monWG.Wait()
	m.Stop()

	want := uint64(goroutinesPerIface * packetsPerGoroutine)
	for _, is := range m.IfaceStats() {
		if is.Offered != want {
			t.Errorf("iface %s offered %d packets, want %d", is.Name, is.Offered, want)
		}
		if is.Packets != want {
			t.Errorf("iface %s delivered %d packets, want %d", is.Name, is.Packets, want)
		}
	}
}

// TestSubscribeAfterStop is the regression test for subscribing to a
// finished stream: the subscription must come back with an already-closed
// channel instead of one that never closes.
func TestSubscribeAfterStop(t *testing.T) {
	cat := newCatalog(t)
	m := NewManager(cat, Config{})
	cq := mustCompile(t, cat, `
		DEFINE { query_name lateq; }
		SELECT time, srcIP FROM eth0.tcp WHERE destPort = 80`)
	if err := m.AddQuery(cq, nil); err != nil {
		t.Fatal(err)
	}
	if err := m.Start(); err != nil {
		t.Fatal(err)
	}
	p := tcpPkt(1, 0x0a000001, 80, "x")
	m.Inject("eth0", &p)
	m.Stop()

	sub, err := m.Subscribe("lateq", 16)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case _, ok := <-sub.C:
		if ok {
			t.Fatal("subscribe after stop delivered a batch; want a closed, empty channel")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("subscribe after stop returned a channel that never closes")
	}
}
