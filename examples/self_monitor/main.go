// self_monitor demonstrates Gigascope monitoring Gigascope (the paper's
// §5 deployment practice): the sysmon subsystem publishes the run time
// system's own statistics as first-class streams — SYSMON.NodeStats, one
// row per query node per sampling interval, delta-encoded — and an
// ordinary GSQL aggregation over that stream raises overload alerts.
//
// The run deliberately forces ring shedding: a "slow analysis" subscriber
// with a tiny ring hangs off an LFTA output and never keeps up, so the
// LFTA publisher sheds tuples (the §4 tuple-value heuristic: least
// processed data is the cheapest to lose). The alert query
//
//	SELECT tb, name, sum(ringDrop) FROM SYSMON.NodeStats
//	GROUP BY ts/10000000 as tb, name
//	HAVING sum(ringDrop) > 0
//
// sees the shedding as it happens, ten virtual seconds at a time. At exit
// the alert totals are reconciled against the manager's own counters:
// because the samples are per-interval deltas, the sums agree exactly.
//
//	go run ./examples/self_monitor
package main

import (
	"fmt"
	"log"

	"gigascope"
)

func main() {
	sys, err := gigascope.New(gigascope.Config{
		SelfMonitor:         true,
		MonitorIntervalUsec: 1_000_000, // sample system state every virtual second
		ValidateOrdering:    true,      // prove the telemetry orderings hold
	})
	if err != nil {
		log.Fatal(err)
	}

	// The monitored workload: a plain selection, compiled to one LFTA.
	sys.MustAddQuery(`
		DEFINE { query_name weblog; }
		SELECT time, srcIP, destIP FROM eth0.TCP
		WHERE destPort = 80`, nil)

	// The monitor: an ordinary GSQL aggregation over system telemetry.
	sys.MustAddQuery(`
		DEFINE { query_name ring_alerts; }
		SELECT tb, name, sum(ringDrop) FROM SYSMON.NodeStats
		GROUP BY ts/10000000 as tb, name
		HAVING sum(ringDrop) > 0`, nil)

	// A subscriber that cannot keep up: four ring slots, never read.
	if _, err := sys.Subscribe("weblog", 4); err != nil {
		log.Fatal(err)
	}
	alerts, err := sys.Subscribe("ring_alerts", 4096)
	if err != nil {
		log.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		log.Fatal(err)
	}

	go func() {
		gen, err := gigascope.NewTrafficGenerator(gigascope.TrafficConfig{
			Seed: 7,
			Classes: []gigascope.TrafficClass{{
				Name: "web", RateMbps: 20, PktBytes: 900, DstPort: 80,
				Proto: gigascope.ProtoTCP,
			}},
		})
		if err != nil {
			log.Fatal(err)
		}
		const horizon = 30_000_000 // 30 virtual seconds
		for usec := uint64(1_000_000); usec <= horizon; usec += 1_000_000 {
			gen.Until(usec, func(p *gigascope.Packet) { sys.Inject("eth0", p) })
			sys.AdvanceClock(usec)
		}
		sys.Stop()
	}()

	fmt.Println("ring-shed alerts (10-second windows):")
	alertTotals := make(map[string]uint64)
	for b := range alerts.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			fmt.Printf("  window %-4s node %-10s shed %s tuples\n", m.Tuple[0], m.Tuple[1], m.Tuple[2])
			alertTotals[m.Tuple[1].Str()] += m.Tuple[2].Uint()
		}
	}

	fmt.Println("\nreconciliation against rts.Manager counters:")
	for _, ns := range sys.Stats() {
		if ns.RingDrop == 0 && alertTotals[ns.Name] == 0 {
			continue
		}
		status := "OK"
		if alertTotals[ns.Name] != ns.RingDrop {
			status = "MISMATCH"
		}
		fmt.Printf("  %-10s alerts=%-8d manager=%-8d %s\n",
			ns.Name, alertTotals[ns.Name], ns.RingDrop, status)
	}
	for _, ns := range sys.Stats() {
		if ns.OrderViolations != 0 {
			fmt.Printf("  %s: %d ordering violations (BUG)\n", ns.Name, ns.OrderViolations)
		}
	}
}
