package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/netsim"
	"gigascope/internal/pkt"
)

// E2: early data reduction by LFTA aggregation with a small direct-mapped
// hash table (paper §3): "Hash table collisions result in a tuple
// computed from the ejected group being written to the output stream.
// Because of temporal locality, aggregation even with a small hash table
// is effective in early data reduction."
//
// We aggregate per-minute per-flow byte counts and sweep the table size
// against the number of concurrent flows, reporting the data reduction
// (input tuples / output partials) and the eviction rate.

// E2Row is one (table size, flows) cell.
type E2Row struct {
	TableSize int
	Flows     int
	In        uint64
	Out       uint64
	Evicted   uint64
	Reduction float64 // In / Out
}

// E2 runs the sweep over the given table sizes and flow counts, feeding
// `packets` packets per cell.
func E2(tableSizes, flowCounts []int, packets int) ([]E2Row, error) {
	var rows []E2Row
	for _, flows := range flowCounts {
		gen, err := netsim.New(netsim.Config{
			Seed: 11,
			Classes: []netsim.Class{{
				Name: "mix", RateMbps: 300, PktBytes: 600, DstPort: 80,
				Proto: pkt.ProtoTCP, Flows: flows,
			}},
		})
		if err != nil {
			return nil, err
		}
		var pkts []pkt.Packet
		for i := 0; i < packets; i++ {
			p, _ := gen.Next()
			pkts = append(pkts, p)
		}
		for _, size := range tableSizes {
			row, err := e2Cell(size, flows, pkts)
			if err != nil {
				return nil, err
			}
			rows = append(rows, row)
		}
	}
	return rows, nil
}

func e2Cell(tableSize, flows int, pkts []pkt.Packet) (E2Row, error) {
	cat, err := newCatalog()
	if err != nil {
		return E2Row{}, err
	}
	cq, err := compileQuery(cat, `
		DEFINE { query_name e2agg; }
		SELECT tb, srcIP, srcPort, count(*), sum(total_length)
		FROM TCP
		GROUP BY time/60 as tb, srcIP, srcPort`,
		&core.Options{LFTATableSize: tableSize})
	if err != nil {
		return E2Row{}, err
	}
	lfta, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		return E2Row{}, err
	}
	drop := func(exec.Message) {}
	for i := range pkts {
		if err := lfta.PushPacket(&pkts[i], drop); err != nil {
			return E2Row{}, err
		}
	}
	lfta.Op.FlushAll(drop)
	st := lfta.Stats()
	red := float64(st.In)
	if st.Out > 0 {
		red = float64(st.In) / float64(st.Out)
	}
	return E2Row{
		TableSize: tableSize, Flows: flows,
		In: st.In, Out: st.Out, Evicted: st.Evicted,
		Reduction: red,
	}, nil
}

// PrintE2 renders the sweep.
func PrintE2(w io.Writer, rows []E2Row) {
	fmt.Fprintln(w, "E2: LFTA direct-mapped aggregation — early data reduction (§3)")
	fmt.Fprintf(w, "  %8s %8s %10s %10s %10s %10s\n",
		"slots", "flows", "tuples in", "partials", "evictions", "reduction")
	for _, r := range rows {
		fmt.Fprintf(w, "  %8d %8d %10d %10d %10d %9.1fx\n",
			r.TableSize, r.Flows, r.In, r.Out, r.Evicted, r.Reduction)
	}
}
