package core

import (
	"fmt"
	"strings"
)

// Explain renders the compiled plan for the gsql tool: node levels,
// operators, source bindings, output schemas with imputed orderings, and
// NIC pushdown.
func (c *CompiledQuery) Explain() string {
	var b strings.Builder
	fmt.Fprintf(&b, "query %s: %d node(s)\n", c.Name, len(c.Nodes))
	for _, n := range c.Nodes {
		fmt.Fprintf(&b, "\n[%s] %s (%s)\n", n.Level, n.Name, n.Kind)
		for _, s := range n.Sources {
			kind := "stream"
			if s.IsProtocol {
				kind = "protocol"
			}
			fmt.Fprintf(&b, "  from: %s (%s)\n", s, kind)
		}
		fmt.Fprintf(&b, "  exec: %s\n", n.Query)
		fmt.Fprintf(&b, "  out:  %s\n", describeSchema(n))
		if n.Level == LevelLFTA {
			if n.NICProgram != nil {
				fmt.Fprintf(&b, "  nic:  %s\n", n.NICProgram)
			}
			if n.SnapLen > 0 {
				fmt.Fprintf(&b, "  snap: %d bytes\n", n.SnapLen)
			} else if n.Sources[0].IsProtocol {
				fmt.Fprintf(&b, "  snap: full packet\n")
			}
		}
	}
	return b.String()
}

func describeSchema(n *Node) string {
	var cols []string
	for _, c := range n.Out.Cols {
		s := fmt.Sprintf("%s %s", c.Name, c.Type)
		if c.Ordering.Kind != 0 {
			s += fmt.Sprintf(" (%s)", c.Ordering)
		}
		cols = append(cols, s)
	}
	return strings.Join(cols, ", ")
}
