package experiments

import (
	"fmt"
	"io"

	"gigascope/internal/netsim"
	"gigascope/internal/nic"
	"gigascope/internal/pkt"
)

// E7: NIC pushdown micro-benchmark (§3): "we can push a simple
// selection/projection operator into the NIC" — a BPF pre-filter plus a
// snap length. We sweep the selectivity of a port filter and measure the
// packets and bytes the host receives with and without pushdown.

// E7Row is one selectivity point.
type E7Row struct {
	SelectivityPct float64
	Offered        uint64
	OfferedBytes   uint64
	HostPkts       uint64 // with pushdown
	HostBytes      uint64
	DumbPkts       uint64 // without pushdown (dumb NIC)
	DumbBytes      uint64
}

// E7 sweeps filter selectivity by varying the share of traffic on the
// filtered port. snapLen models a header-only query (e.g. 54 bytes).
func E7(packets int, selectivities []float64, snapLen int) ([]E7Row, error) {
	var rows []E7Row
	for _, sel := range selectivities {
		row, err := e7Run(packets, sel, snapLen)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func e7Run(packets int, selectivity float64, snapLen int) (E7Row, error) {
	// Build the port-80 program the compiler would push down.
	prog := &nic.Program{
		Clauses: []nic.Clause{{
			nic.Cmp{Raw: pkt.RawRef{Off: 36, Width: 2}, Op: nic.CmpEq, Val: 80},
		}},
		SnapLen: snapLen,
	}
	bpf := nic.NewDevice(nic.CapBPF)
	if err := bpf.Install(prog); err != nil {
		return E7Row{}, err
	}
	dumb := nic.NewDevice(nic.CapDumb)

	matchRate := 100 * selectivity
	otherRate := 100 * (1 - selectivity)
	classes := []netsim.Class{}
	if matchRate > 0 {
		classes = append(classes, netsim.Class{
			Name: "match", RateMbps: matchRate, PktBytes: 900, DstPort: 80, Proto: pkt.ProtoTCP,
		})
	}
	if otherRate > 0 {
		classes = append(classes, netsim.Class{
			Name: "other", RateMbps: otherRate, PktBytes: 900, DstPort: 7777, Proto: pkt.ProtoTCP,
		})
	}
	gen, err := netsim.New(netsim.Config{Seed: 71, Classes: classes})
	if err != nil {
		return E7Row{}, err
	}
	row := E7Row{SelectivityPct: selectivity * 100}
	for i := 0; i < packets; i++ {
		p, _ := gen.Next()
		row.Offered++
		row.OfferedBytes += uint64(p.WireLen)
		if out, ok := bpf.Process(&p); ok {
			row.HostPkts++
			row.HostBytes += uint64(out.CapLen())
		}
		if out, ok := dumb.Process(&p); ok {
			row.DumbPkts++
			row.DumbBytes += uint64(out.CapLen())
		}
	}
	return row, nil
}

// PrintE7 renders the sweep.
func PrintE7(w io.Writer, rows []E7Row) {
	fmt.Fprintln(w, "E7: NIC BPF pre-filter + snap length — host load reduction (§3)")
	fmt.Fprintf(w, "  %12s %10s %12s %12s %12s %10s\n",
		"selectivity", "offered", "host pkts", "host bytes", "dumb bytes", "byte redux")
	for _, r := range rows {
		redux := float64(r.DumbBytes) / float64(max64(r.HostBytes, 1))
		fmt.Fprintf(w, "  %11.0f%% %10d %12d %12d %12d %9.1fx\n",
			r.SelectivityPct, r.Offered, r.HostPkts, r.HostBytes, r.DumbBytes, redux)
	}
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
