package exec

import (
	"math/rand"
	"testing"
	"testing/quick"

	"gigascope/internal/schema"
)

// Join test fixtures: left stream (time, src) joins right stream
// (time, src, peer) on src with a time window.

func joinLeftSchema() *schema.Schema  { return outSchema("time", "src") }
func joinRightSchema() *schema.Schema { return outSchema("time", "src", "peer") }

func lrow(ts, src uint64) schema.Tuple {
	return schema.Tuple{schema.MakeUint(ts), schema.MakeUint(src)}
}

func rrow(ts, src, peer uint64) schema.Tuple {
	return schema.Tuple{schema.MakeUint(ts), schema.MakeUint(src), schema.MakeUint(peer)}
}

// buildJoin wires: SELECT L.time, L.src, R.peer FROM L, R
// WHERE L.src = R.src AND window(L.time, R.time, low, high)
func buildJoin(t *testing.T, low, high int64, maxBuffer int) *Join {
	t.Helper()
	ls, rs := joinLeftSchema(), joinRightSchema()
	ordL := quietCompile(ls, "L", "time")[0]
	ordR := quietCompile(rs, "R", "time")[0]
	eqL := quietCompile(ls, "L", "src")
	eqR := quietCompile(rs, "R", "src")
	// Combined row: L columns then R columns.
	combined := outSchema("ltime", "lsrc", "rtime", "rsrc", "peer")
	outs := quietCompile(combined, "c", "ltime", "lsrc", "peer")
	j, err := NewJoin(JoinSpec{
		OrdL: ordL, OrdR: ordR,
		LowSlack: low, HighSlack: high,
		EqL: eqL, EqR: eqR,
		Outs: outs, Out: outSchema("time", "src", "peer"),
		OutOrdL: 0, OutOrdR: -1,
		MaxBuffer: maxBuffer,
	})
	if err != nil {
		t.Fatal(err)
	}
	return j
}

func TestJoinEqualityWindow(t *testing.T) {
	j := buildJoin(t, 0, 0, 0)
	var out []Message
	emit := Collect(&out)
	j.Push(1, TupleMsg(rrow(1, 7, 700)), emit)
	j.Push(0, TupleMsg(lrow(1, 7)), emit) // matches
	j.Push(0, TupleMsg(lrow(1, 8)), emit) // src mismatch
	j.Push(0, TupleMsg(lrow(2, 7)), emit) // time mismatch
	rows := tuplesOf(out)
	if len(rows) != 1 {
		t.Fatalf("rows = %v", rows)
	}
	if rows[0][0].Uint() != 1 || rows[0][1].Uint() != 7 || rows[0][2].Uint() != 700 {
		t.Errorf("row = %v", rows[0])
	}
}

func TestJoinBandWindow(t *testing.T) {
	// B.time >= C.time-1 and B.time <= C.time+1 (paper §2.1):
	// low = high = 1.
	j := buildJoin(t, 1, 1, 0)
	var out []Message
	emit := Collect(&out)
	j.Push(1, TupleMsg(rrow(5, 7, 700)), emit)
	for _, ts := range []uint64{3, 4, 5, 6, 7} {
		j.Push(0, TupleMsg(lrow(ts, 7)), emit)
	}
	rows := tuplesOf(out)
	if len(rows) != 3 {
		t.Fatalf("rows = %v, want matches at 4,5,6", rows)
	}
	for i, want := range []uint64{4, 5, 6} {
		if rows[i][0].Uint() != want {
			t.Errorf("row %d time = %d, want %d", i, rows[i][0].Uint(), want)
		}
	}
}

func TestJoinBothDirections(t *testing.T) {
	// Matching works regardless of arrival side order.
	j := buildJoin(t, 0, 0, 0)
	var out []Message
	emit := Collect(&out)
	j.Push(0, TupleMsg(lrow(3, 9)), emit) // left arrives first
	j.Push(1, TupleMsg(rrow(3, 9, 900)), emit)
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][2].Uint() != 900 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinEvictsOutsideWindow(t *testing.T) {
	j := buildJoin(t, 1, 1, 0)
	var out []Message
	emit := Collect(&out)
	for ts := uint64(1); ts <= 100; ts++ {
		j.Push(0, TupleMsg(lrow(ts, 7)), emit)
		j.Push(1, TupleMsg(rrow(ts, 7, ts)), emit)
	}
	// Each left matches right at ts-1, ts (and ts+1 arriving later):
	// buffers must stay small, bounded by the window, not grow linearly.
	if b := j.Buffered(0); b > 8 {
		t.Errorf("left buffer = %d, want window-bounded", b)
	}
	if b := j.Buffered(1); b > 8 {
		t.Errorf("right buffer = %d, want window-bounded", b)
	}
	rows := tuplesOf(out)
	// ts=1: matches 1,2 edges... count: pairs (l,r) with |l-r|<=1 both in
	// [1,100]: 100 diagonal + 99 above + 99 below = 298.
	if len(rows) != 298 {
		t.Errorf("matches = %d, want 298", len(rows))
	}
}

func TestJoinHeartbeatEvictsAndBounds(t *testing.T) {
	j := buildJoin(t, 0, 0, 0)
	var out []Message
	emit := Collect(&out)
	j.Push(0, TupleMsg(lrow(10, 1)), emit)
	// Right heartbeat at time 50: left tuple at 10 can never match.
	bounds := schema.Tuple{schema.MakeUint(50), schema.Null, schema.Null}
	j.Push(1, HeartbeatMsg(bounds), emit)
	if b := j.Buffered(0); b != 0 {
		t.Errorf("left buffer = %d after right heartbeat", b)
	}
	// Output heartbeat bound: min(wmL, wmR-high) = min(10, 50) = 10.
	last := out[len(out)-1]
	if !last.IsHeartbeat() || last.Bounds[0].IsNull() || last.Bounds[0].Uint() != 10 {
		t.Errorf("HB = %v", last)
	}
}

func TestJoinResidualPredicate(t *testing.T) {
	ls, rs := joinLeftSchema(), joinRightSchema()
	ordL := quietCompile(ls, "L", "time")[0]
	ordR := quietCompile(rs, "R", "time")[0]
	combined := outSchema("ltime", "lsrc", "rtime", "rsrc", "peer")
	residual := quietCompile(combined, "c", "peer > 100")[0]
	outs := quietCompile(combined, "c", "ltime", "peer")
	j, err := NewJoin(JoinSpec{
		OrdL: ordL, OrdR: ordR,
		Outs: outs, Out: outSchema("time", "peer"),
		Residual: residual,
		OutOrdL:  0, OutOrdR: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	var out []Message
	emit := Collect(&out)
	j.Push(1, TupleMsg(rrow(1, 1, 50)), emit)
	j.Push(1, TupleMsg(rrow(1, 2, 200)), emit)
	j.Push(0, TupleMsg(lrow(1, 9)), emit) // no eq keys: window-only join
	rows := tuplesOf(out)
	if len(rows) != 1 || rows[0][1].Uint() != 200 {
		t.Fatalf("rows = %v", rows)
	}
}

func TestJoinMaxBufferSheds(t *testing.T) {
	j := buildJoin(t, 0, 1000, 4)
	emit := func(Message) {}
	for ts := uint64(1); ts <= 50; ts++ {
		j.Push(0, TupleMsg(lrow(ts, 7)), emit)
	}
	if b := j.Buffered(0); b > 4 {
		t.Errorf("buffer = %d exceeds MaxBuffer", b)
	}
	if j.Stats().Dropped == 0 {
		t.Error("no shed tuples counted")
	}
}

func TestJoinMatchesNaiveProperty(t *testing.T) {
	// Against a brute-force nested-loop join over the full inputs.
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		low, high := int64(r.Intn(3)), int64(r.Intn(3))
		type lrec struct{ ts, src uint64 }
		type rrec struct{ ts, src, peer uint64 }
		var ls []lrec
		var rs []rrec
		var lt, rt uint64
		for i := 0; i < 120; i++ {
			lt += uint64(r.Intn(3))
			ls = append(ls, lrec{lt, uint64(r.Intn(4))})
			rt += uint64(r.Intn(3))
			rs = append(rs, rrec{rt, uint64(r.Intn(4)), uint64(i)})
		}
		want := 0
		for _, l := range ls {
			for _, rr := range rs {
				d := int64(rr.ts) - int64(l.ts)
				if l.src == rr.src && d >= -low && d <= high {
					want++
				}
			}
		}
		j := buildJoinQuiet(low, high)
		var out []Message
		emit := Collect(&out)
		// Random interleaving of the two (individually ordered) streams.
		li, ri := 0, 0
		for li < len(ls) || ri < len(rs) {
			if ri >= len(rs) || (li < len(ls) && r.Intn(2) == 0) {
				j.Push(0, TupleMsg(lrow(ls[li].ts, ls[li].src)), emit)
				li++
			} else {
				j.Push(1, TupleMsg(rrow(rs[ri].ts, rs[ri].src, rs[ri].peer)), emit)
				ri++
			}
		}
		return len(tuplesOf(out)) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func buildJoinQuiet(low, high int64) *Join {
	ls, rs := joinLeftSchema(), joinRightSchema()
	ordL := quietCompile(ls, "L", "time")[0]
	ordR := quietCompile(rs, "R", "time")[0]
	eqL := quietCompile(ls, "L", "src")
	eqR := quietCompile(rs, "R", "src")
	combined := outSchema("ltime", "lsrc", "rtime", "rsrc", "peer")
	outs := quietCompile(combined, "c", "ltime", "lsrc", "peer")
	j, err := NewJoin(JoinSpec{
		OrdL: ordL, OrdR: ordR,
		LowSlack: low, HighSlack: high,
		EqL: eqL, EqR: eqR,
		Outs: outs, Out: outSchema("time", "src", "peer"),
		OutOrdL: 0, OutOrdR: -1,
	})
	if err != nil {
		panic(err)
	}
	return j
}

func TestJoinRejectsBadSpec(t *testing.T) {
	if _, err := NewJoin(JoinSpec{}); err == nil {
		t.Error("join without ordered attributes accepted")
	}
	ls := joinLeftSchema()
	ordL := quietCompile(ls, "L", "time")[0]
	if _, err := NewJoin(JoinSpec{OrdL: ordL, OrdR: ordL, EqL: quietCompile(ls, "L", "src")}); err == nil {
		t.Error("unbalanced eq lists accepted")
	}
}
