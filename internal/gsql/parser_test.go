package gsql

import (
	"strings"
	"testing"

	"gigascope/internal/schema"
)

func mustParseQuery(t *testing.T, src string) *Query {
	t.Helper()
	q, err := ParseQuery(src)
	if err != nil {
		t.Fatalf("ParseQuery(%q): %v", src, err)
	}
	return q
}

func TestParsePaperQueryTCPDest(t *testing.T) {
	// The paper's first example (§2.2), braced DEFINE form.
	q := mustParseQuery(t, `
		DEFINE { query_name tcpdest0; }
		SELECT destIP, destPort, time
		FROM eth0.tcp
		WHERE ipversion = 4 and protocol = 6`)
	if q.Name() != "tcpdest0" {
		t.Errorf("Name() = %q", q.Name())
	}
	if q.Kind != KindSelect || len(q.Select) != 3 {
		t.Fatalf("kind %v, %d select items", q.Kind, len(q.Select))
	}
	if len(q.Sources) != 1 || q.Sources[0].Interface != "eth0" || q.Sources[0].Name != "tcp" {
		t.Errorf("sources = %v", q.Sources)
	}
	and, ok := q.Where.(*BinaryExpr)
	if !ok || and.Op != OpAnd {
		t.Fatalf("where = %v", q.Where)
	}
}

func TestParsePaperInlineDefine(t *testing.T) {
	// The paper writes "DEFINE query name tcpdest0;" inline.
	q := mustParseQuery(t, `
		DEFINE query name tcpdest0;
		SELECT time FROM tcp`)
	if q.Name() != "tcpdest0" {
		t.Errorf("Name() = %q", q.Name())
	}
}

func TestParsePaperMergeQuery(t *testing.T) {
	q := mustParseQuery(t, `
		DEFINE { query_name tcpdest; }
		Merge tcpdest0.time : tcpdest1.time
		From tcpdest0, tcpdest1`)
	if q.Kind != KindMerge {
		t.Fatalf("kind = %v", q.Kind)
	}
	if len(q.MergeCols) != 2 || q.MergeCols[0].Table != "tcpdest0" || q.MergeCols[1].Name != "time" {
		t.Errorf("merge cols = %v", q.MergeCols)
	}
	if len(q.Sources) != 2 {
		t.Errorf("sources = %v", q.Sources)
	}
}

func TestParsePaperAggregationQuery(t *testing.T) {
	// §2.2: group-by with expressions and a pass-by-handle UDF.
	q := mustParseQuery(t, `
		Select peerid, tb, count(*)
		FROM tcpdest
		Group by time/60 as tb, getlpmid(destIP, 'peerid.tbl') as peerid`)
	if len(q.GroupBy) != 2 {
		t.Fatalf("group by = %v", q.GroupBy)
	}
	if q.GroupBy[0].Alias != "tb" {
		t.Errorf("alias = %q", q.GroupBy[0].Alias)
	}
	div, ok := q.GroupBy[0].Expr.(*BinaryExpr)
	if !ok || div.Op != OpDiv {
		t.Errorf("group expr = %v", q.GroupBy[0].Expr)
	}
	call, ok := q.GroupBy[1].Expr.(*FuncCall)
	if !ok || call.Name != "getlpmid" || len(call.Args) != 2 {
		t.Fatalf("udf = %v", q.GroupBy[1].Expr)
	}
	if c, ok := call.Args[1].(*Const); !ok || c.Val.Str() != "peerid.tbl" {
		t.Errorf("handle arg = %v", call.Args[1])
	}
	cnt, ok := q.Select[2].Expr.(*FuncCall)
	if !ok || cnt.Name != "count" || len(cnt.Args) != 1 {
		t.Fatalf("count = %v", q.Select[2].Expr)
	}
	if _, ok := cnt.Args[0].(*Star); !ok {
		t.Errorf("count arg = %v", cnt.Args[0])
	}
}

func TestParseJoinWithWindowPredicate(t *testing.T) {
	q := mustParseQuery(t, `
		SELECT B.time, B.srcIP, C.destIP
		FROM backbone B, customer C
		WHERE B.time <= C.time+1 and B.time >= C.time-1 and B.srcIP = C.srcIP`)
	if len(q.Sources) != 2 || q.Sources[0].Alias != "B" || q.Sources[1].Alias != "C" {
		t.Fatalf("sources = %v", q.Sources)
	}
	col, ok := q.Select[0].Expr.(*ColRef)
	if !ok || col.Table != "B" || col.Name != "time" {
		t.Errorf("select[0] = %v", q.Select[0].Expr)
	}
}

func TestParsePrecedence(t *testing.T) {
	q := mustParseQuery(t, "SELECT a + b * c FROM s WHERE x = 1 or y = 2 and z = 3")
	add, ok := q.Select[0].Expr.(*BinaryExpr)
	if !ok || add.Op != OpAdd {
		t.Fatalf("expr = %v", q.Select[0].Expr)
	}
	if mul, ok := add.R.(*BinaryExpr); !ok || mul.Op != OpMul {
		t.Errorf("* does not bind tighter than +: %v", q.Select[0].Expr)
	}
	or, ok := q.Where.(*BinaryExpr)
	if !ok || or.Op != OpOr {
		t.Fatalf("where = %v", q.Where)
	}
	if and, ok := or.R.(*BinaryExpr); !ok || and.Op != OpAnd {
		t.Errorf("AND does not bind tighter than OR: %v", q.Where)
	}
}

func TestParseLiteralsAndParams(t *testing.T) {
	q := mustParseQuery(t, `
		DEFINE { query_name pq; param port uint; param who string; }
		SELECT time FROM tcp
		WHERE destPort = $port and srcIP = 10.1.2.3 and f = 2.5 and ok = TRUE and s = 'x'`)
	params := q.Params()
	if params["port"] != schema.TUint || params["who"] != schema.TString {
		t.Errorf("params = %v", params)
	}
	var ipSeen, paramSeen, floatSeen, boolSeen bool
	Walk(q.Where, func(e Expr) bool {
		switch n := e.(type) {
		case *Const:
			switch n.Val.Type {
			case schema.TIP:
				ipSeen = n.Val.IP() == 0x0a010203
			case schema.TFloat:
				floatSeen = n.Val.Float() == 2.5
			case schema.TBool:
				boolSeen = n.Val.Bool()
			}
		case *ParamRef:
			paramSeen = n.Name == "port"
		}
		return true
	})
	if !ipSeen || !paramSeen || !floatSeen || !boolSeen {
		t.Errorf("literals: ip=%v param=%v float=%v bool=%v", ipSeen, paramSeen, floatSeen, boolSeen)
	}
}

func TestParseUnaryAndParens(t *testing.T) {
	q := mustParseQuery(t, "SELECT -(a + 1), ~b FROM s WHERE not (x = 1)")
	if neg, ok := q.Select[0].Expr.(*UnaryExpr); !ok || neg.Op != OpNeg {
		t.Errorf("select[0] = %v", q.Select[0].Expr)
	}
	if bn, ok := q.Select[1].Expr.(*UnaryExpr); !ok || bn.Op != OpBitNot {
		t.Errorf("select[1] = %v", q.Select[1].Expr)
	}
	if n, ok := q.Where.(*UnaryExpr); !ok || n.Op != OpNot {
		t.Errorf("where = %v", q.Where)
	}
}

func TestParseHaving(t *testing.T) {
	q := mustParseQuery(t, `
		SELECT tb, count(*) as cnt FROM tcp GROUP BY time/60 as tb HAVING count(*) > 100`)
	if q.Having == nil {
		t.Fatal("no HAVING")
	}
	if q.Select[1].Alias != "cnt" {
		t.Errorf("alias = %q", q.Select[1].Alias)
	}
}

func TestParseProtocolDef(t *testing.T) {
	script, err := ParseScript(`
		PROTOCOL NETFLOW {
			uint time get_nf_time (increasing);
			uint start_time get_nf_start (banded_increasing 30);
			uint seq get_nf_seq (monotone_nonrepeating);
			uint grp_ts get_nf_gts (increasing_in_group srcIP, destIP);
			ip srcIP get_nf_src;
			ip destIP get_nf_dst;
		}
		PROTOCOL CHILD (base NETFLOW) {
			uint extra;
		}`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Protocols) != 2 {
		t.Fatalf("%d protocols", len(script.Protocols))
	}
	nf := script.Protocols[0]
	if nf.Name != "NETFLOW" || len(nf.Cols) != 6 {
		t.Fatalf("nf = %+v", nf)
	}
	if nf.Cols[0].Ord.Kind != schema.OrderIncreasing {
		t.Errorf("time ord = %v", nf.Cols[0].Ord)
	}
	if nf.Cols[1].Ord.Kind != schema.OrderBandedIncreasing || nf.Cols[1].Ord.Band != 30 {
		t.Errorf("start ord = %v", nf.Cols[1].Ord)
	}
	if nf.Cols[2].Ord.Kind != schema.OrderNonrepeating {
		t.Errorf("seq ord = %v", nf.Cols[2].Ord)
	}
	g := nf.Cols[3].Ord
	if g.Kind != schema.OrderIncreasingInGroup || len(g.Group) != 2 || g.Group[0] != "srcIP" {
		t.Errorf("grp ord = %v", g)
	}
	if nf.Cols[4].Interp != "get_nf_src" {
		t.Errorf("interp = %q", nf.Cols[4].Interp)
	}
	child := script.Protocols[1]
	if child.Base != "NETFLOW" || child.Cols[0].Interp != "" {
		t.Errorf("child = %+v", child)
	}
}

func TestParseScriptMultipleQueries(t *testing.T) {
	script, err := ParseScript(`
		DEFINE { query_name q1; }
		SELECT time FROM eth0.tcp;
		DEFINE { query_name q2; }
		SELECT time FROM q1;
		MERGE q1.time : q2.time FROM q1, q2`)
	if err != nil {
		t.Fatal(err)
	}
	if len(script.Queries) != 3 {
		t.Fatalf("%d queries", len(script.Queries))
	}
	if script.Queries[2].Kind != KindMerge {
		t.Errorf("q3 kind = %v", script.Queries[2].Kind)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"SELECT FROM x",
		"SELECT a",
		"SELECT a FROM",
		"SELECT a FROM x WHERE",
		"MERGE a.t FROM",
		"SELECT a FROM x GROUP time",
		"DEFINE { query_name; } SELECT a FROM x",
		"DEFINE { k v; k v2; } SELECT a FROM x",
		"DEFINE { param p; } SELECT a FROM x",
		"DEFINE { param p badtype; } SELECT a FROM x",
		"PROTOCOL {}",
		"PROTOCOL P { badtype f; }",
		"PROTOCOL P { uint f (warped); }",
		"PROTOCOL P { uint f (banded_increasing); }",
		"PROTOCOL P { uint f (increasing_in_group); }",
		"SELECT a FROM x trailing garbage --",
		"SELECT count(* FROM x",
		"UPDATE t SET x = 1",
	}
	for _, src := range bad {
		if q, err := ParseQuery(src); err == nil {
			t.Errorf("ParseQuery(%q) succeeded: %v", src, q)
		}
		if _, err := ParseScript(src); err == nil {
			t.Errorf("ParseScript(%q) succeeded", src)
		}
	}
}

func TestParseErrorHasPosition(t *testing.T) {
	_, err := ParseQuery("SELECT a FROM\n   WHERE")
	if err == nil {
		t.Fatal("no error")
	}
	if !strings.Contains(err.Error(), "2:") {
		t.Errorf("error lacks line info: %v", err)
	}
}

func TestQueryStringRoundTrip(t *testing.T) {
	// String() output must re-parse to an equivalent query.
	srcs := []string{
		"SELECT destIP, destPort, time FROM eth0.tcp WHERE ipversion = 4 and protocol = 6",
		"SELECT tb, count(*) FROM t GROUP BY time/60 AS tb HAVING count(*) > 2",
		"MERGE a.time : b.time FROM a, b",
		"SELECT x FROM s WHERE p = $port and ip = 10.0.0.1",
	}
	for _, src := range srcs {
		q1 := mustParseQuery(t, src)
		q2 := mustParseQuery(t, q1.String())
		if q1.String() != q2.String() {
			t.Errorf("round trip:\n  src:  %s\n  1st:  %s\n  2nd:  %s", src, q1, q2)
		}
	}
}
