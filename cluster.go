package gigascope

import (
	"fmt"
	"os"
	"path/filepath"
	"time"

	"gigascope/internal/coord"
	"gigascope/internal/core"
	"gigascope/internal/rts"
)

// ClusterConfig configures an in-process multi-System deployment: one
// System per topology host, wired over real unix sockets exactly like
// separate processes would be, with the coordinator deciding placement.
// This is the distributed difftest's execution vehicle and the reference
// the multi-process mode is diffed against.
type ClusterConfig struct {
	Topology *Topology
	Script   string
	// Params carries per-query parameter bindings as in AddScriptParams.
	Params map[string]map[string]Value
	// Seed feeds placement tie-breaking and wire-client jitter.
	Seed int64
	// System is the base Config each host System starts from.
	System Config
	// Costs overrides the placement cost model (nil = defaults).
	Costs *CostModel
	// SocketDir holds the unix sockets; empty uses a fresh temp dir
	// (removed by Stop). Keep paths short: sun_path is ~104 bytes.
	SocketDir string
	// ConnectTimeout bounds import dial retries (default 10s).
	ConnectTimeout time.Duration
	// Degrade / DeadAfter configure every import's failure policy.
	Degrade   DegradePolicy
	DeadAfter int
	// BackoffMin / BackoffMax bound every import's reconnect backoff
	// (zero keeps the wire defaults).
	BackoffMin time.Duration
	BackoffMax time.Duration
	// WireHeartbeat overrides every export server's keepalive interval
	// (zero keeps the wire default, 100ms).
	WireHeartbeat time.Duration
	// ServerFaults / ClientFaults inject seeded wire faults on the named
	// host's server / client transports (tests).
	ServerFaults map[string]*WireFaults
	ClientFaults map[string]*WireFaults
}

// Cluster is a running in-process deployment: N Systems, one per
// topology host, connected per the coordinator's manifest.
type Cluster struct {
	cfg      ClusterConfig
	manifest *Manifest
	router   *coord.Router
	sessions map[string]*HostSession
	order    []string
	sockDir  string
	ownDir   bool
	injected map[string]uint64 // per-interface packet index for routing
	stopped  bool
}

// NewCluster validates the configuration and computes the placement; no
// Systems run until Start.
func NewCluster(cfg ClusterConfig) (*Cluster, error) {
	if cfg.Topology == nil {
		return nil, fmt.Errorf("gigascope: cluster needs a topology")
	}
	m, err := PlaceScript(cfg.Script, cfg.Topology, cfg.System, cfg.Seed, cfg.Costs)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		cfg:      cfg,
		manifest: m,
		router:   cfg.Topology.Router(),
		sessions: map[string]*HostSession{},
		order:    m.Order,
		injected: map[string]uint64{},
	}, nil
}

// Manifest returns the computed placement.
func (c *Cluster) Manifest() *Manifest { return c.manifest }

// HostSystem returns the named host's System (nil before Start).
func (c *Cluster) HostSystem(name string) *System {
	if s, ok := c.sessions[name]; ok {
		return s.sys
	}
	return nil
}

// Session returns the named host's session (nil before Start).
func (c *Cluster) Session(name string) *HostSession { return c.sessions[name] }

// Sink returns the sink host's System.
func (c *Cluster) Sink() *System { return c.HostSystem(c.manifest.Sink) }

// Plan returns a query's compiled plan (from the sink's compilation —
// all hosts compile identically).
func (c *Cluster) Plan(name string) (*core.CompiledQuery, bool) {
	if s := c.Sink(); s != nil {
		return s.Plan(name)
	}
	return nil, false
}

// Start brings up every host in manifest order (producers before
// consumers), so each import dials a listener whose stream exists. When
// Start returns, every wire subscription is established: traffic
// injected afterwards is never missed.
func (c *Cluster) Start() error {
	dir := c.cfg.SocketDir
	if dir == "" {
		d, err := os.MkdirTemp("", "gsc")
		if err != nil {
			return err
		}
		dir = d
		c.ownDir = true
	}
	c.sockDir = dir
	addrs := map[string]string{}
	for i, h := range c.manifest.Hosts {
		addrs[h.Name] = "unix:" + filepath.Join(dir, fmt.Sprintf("h%d.sock", i))
	}
	for _, host := range c.order {
		s, err := StartHost(HostConfig{
			Script:         c.cfg.Script,
			Params:         c.cfg.Params,
			Topology:       c.cfg.Topology,
			Manifest:       c.manifest,
			Host:           host,
			Seed:           c.cfg.Seed,
			System:         c.cfg.System,
			Addrs:          addrs,
			ConnectTimeout: c.cfg.ConnectTimeout,
			Degrade:        c.cfg.Degrade,
			DeadAfter:      c.cfg.DeadAfter,
			BackoffMin:     c.cfg.BackoffMin,
			BackoffMax:     c.cfg.BackoffMax,
			WireHeartbeat:  c.cfg.WireHeartbeat,
			ServerFaults:   c.cfg.ServerFaults[host],
			ClientFaults:   c.cfg.ClientFaults[host],
		})
		if err != nil {
			c.Stop()
			return fmt.Errorf("gigascope: cluster host %s: %w", host, err)
		}
		c.sessions[host] = s
	}
	return nil
}

// Subscribe opens a subscription on the sink host, where every query
// output is present (locally computed, imported, or reunified).
func (c *Cluster) Subscribe(name string, bufSize int) (*Subscription, error) {
	s := c.Sink()
	if s == nil {
		return nil, fmt.Errorf("gigascope: cluster not started")
	}
	return s.Subscribe(name, bufSize)
}

// InjectBatch routes one poll window of packets to the capturing hosts:
// whole-captured interfaces deliver the batch to their captor; split
// captures partition packets round-robin by global per-interface packet
// index — the same rule placement assumed — preserving arrival order
// within each partition.
func (c *Cluster) InjectBatch(iface string, ps []*Packet) {
	if len(ps) == 0 {
		return
	}
	key := iface
	if key == "" {
		key = "default"
	}
	idx := c.injected[key]
	perHost := map[string][]*Packet{}
	var hostOrder []string
	for _, p := range ps {
		host, ok := c.router.Route(iface, idx)
		idx++
		if !ok {
			continue
		}
		if _, seen := perHost[host]; !seen {
			hostOrder = append(hostOrder, host)
		}
		perHost[host] = append(perHost[host], p)
	}
	c.injected[key] = idx
	for _, host := range hostOrder {
		if s, ok := c.sessions[host]; ok {
			s.sys.InjectBatch(iface, perHost[host])
		}
	}
}

// Inject routes a single packet (see InjectBatch).
func (c *Cluster) Inject(iface string, p *Packet) { c.InjectBatch(iface, []*Packet{p}) }

// AdvanceClock moves the virtual clock on every capture host; the other
// hosts follow through the clock stamps on wire batches and keepalives.
func (c *Cluster) AdvanceClock(usec uint64) {
	for _, tn := range c.cfg.Topology.Nodes {
		if len(tn.Captures) == 0 {
			continue
		}
		if s, ok := c.sessions[tn.Name]; ok {
			s.sys.AdvanceClock(usec)
		}
	}
}

// Stats returns per-node counters for every host, keyed by host name.
func (c *Cluster) Stats() map[string][]rts.NodeStats {
	out := map[string][]rts.NodeStats{}
	for name, s := range c.sessions {
		out[name] = s.sys.Stats()
	}
	return out
}

// Stop tears the cluster down in manifest order: producers first, so
// each consumer's imports see fin and drain before the consumer itself
// flushes. Safe to call more than once.
func (c *Cluster) Stop() {
	if c.stopped {
		return
	}
	c.stopped = true
	for _, host := range c.order {
		if s, ok := c.sessions[host]; ok {
			s.Shutdown(10 * time.Second)
		}
	}
	if c.ownDir && c.sockDir != "" {
		os.RemoveAll(c.sockDir)
	}
}
