package difftest

import (
	"os"
	"path/filepath"
	"testing"

	"gigascope/internal/oracle"
)

// tracePackets is the per-case trace length for the matrix test: long
// enough to populate aggregation groups, join windows, and multiple
// heartbeat intervals, short enough that the full matrix stays well under
// the CI time budget.
const tracePackets = 1200

// TestDifferentialMatrix is the main equivalence run: seeded cases, each
// checked under every matrix config against the reference oracle. A
// mismatch is minimized and persisted as a replayable artifact under
// testdata/repros/ before failing the test.
func TestDifferentialMatrix(t *testing.T) {
	seeds := []int64{1, 2, 3, 4, 5, 6, 7, 8}
	if testing.Short() {
		seeds = seeds[:3]
	}
	cells := 0
	for _, seed := range seeds {
		c, err := NewCase(seed, tracePackets)
		if err != nil {
			t.Fatalf("seed %d: generating case: %v", seed, err)
		}
		cache := map[bool]map[string]*oracle.Result{}
		for _, cfg := range Matrix() {
			cells++
			t.Run(cfg.Name()+"_seed"+itoa(seed), func(t *testing.T) {
				want, ok := cache[cfg.Faults]
				if !ok {
					var err error
					want, err = OracleResults(c, cfg.Faults)
					if err != nil {
						t.Fatalf("oracle: %v", err)
					}
					cache[cfg.Faults] = want
				}
				m, err := CheckConfig(c, cfg, want)
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if m == nil {
					return
				}
				min := Minimize(c, cfg, DefaultMinimizeBudget)
				var dir string
				if run, rerr := RunPipeline(min, cfg); rerr == nil {
					dir, err = WriteArtifact("testdata/repros", min, cfg, m, run.Plans)
				} else {
					dir, err = WriteArtifact("testdata/repros", min, cfg, m, nil)
				}
				if err != nil {
					t.Fatalf("mismatch (artifact write failed: %v): %s", err, m)
				}
				t.Fatalf("%s\nminimized repro written to %s", m, dir)
			})
		}
	}
	t.Logf("checked %d (case, config) cells", cells)
}

func itoa(v int64) string {
	if v == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	neg := v < 0
	if neg {
		v = -v
	}
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	if neg {
		i--
		buf[i] = '-'
	}
	return string(buf[i:])
}

// TestReplayRepros replays every committed artifact under testdata/repros.
// A replayed artifact that still mismatches means a previously found bug
// is back (or was never fixed); the test fails with the divergence.
func TestReplayRepros(t *testing.T) {
	entries, err := os.ReadDir("testdata/repros")
	if err != nil {
		if os.IsNotExist(err) {
			t.Skip("no repro directory")
		}
		t.Fatal(err)
	}
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		dir := filepath.Join("testdata/repros", e.Name())
		t.Run(e.Name(), func(t *testing.T) {
			m, err := ReplayDir(dir)
			if err != nil {
				t.Fatalf("replay: %v", err)
			}
			if m != nil {
				t.Fatalf("artifact still reproduces: %s", m)
			}
		})
	}
}

// TestArtifactRoundTrip checks that a written artifact reads back into an
// identical case: same queries, params, config, and trace bytes.
func TestArtifactRoundTrip(t *testing.T) {
	c, err := NewCase(42, 200)
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{MaxBatch: 64, Shards: 4, Faults: true}
	m := &Mismatch{Query: "q", Config: cfg, Kind: "multiset", Detail: "synthetic"}
	dir := t.TempDir()
	out, err := WriteArtifact(dir, c, cfg, m, nil)
	if err != nil {
		t.Fatal(err)
	}
	rc, rcfg, err := ReadArtifact(out)
	if err != nil {
		t.Fatal(err)
	}
	if rcfg != cfg {
		t.Fatalf("config round trip: got %+v want %+v", rcfg, cfg)
	}
	if len(rc.Queries) != len(c.Queries) {
		t.Fatalf("query count round trip: got %d want %d", len(rc.Queries), len(c.Queries))
	}
	for i := range c.Queries {
		if rc.Queries[i] != c.Queries[i] {
			t.Fatalf("query %d round trip mismatch", i)
		}
	}
	if len(rc.Params) != len(c.Params) {
		t.Fatalf("param count round trip: got %d want %d", len(rc.Params), len(c.Params))
	}
	for k, v := range c.Params {
		rv, ok := rc.Params[k]
		if !ok || rv.Type != v.Type || rv.String() != v.String() {
			t.Fatalf("param %s round trip: got %v want %v", k, rc.Params[k], v)
		}
	}
	if len(rc.Trace) != len(c.Trace) {
		t.Fatalf("trace length round trip: got %d want %d", len(rc.Trace), len(c.Trace))
	}
	for i := range c.Trace {
		if rc.Trace[i].TS != c.Trace[i].TS || rc.Trace[i].WireLen != c.Trace[i].WireLen ||
			string(rc.Trace[i].Data) != string(c.Trace[i].Data) {
			t.Fatalf("trace packet %d round trip mismatch", i)
		}
	}
}

// TestMinimizerPreservesFailure feeds the minimizer a predicate-style
// failing case by construction: it checks that Minimize never returns a
// case that stopped failing. Uses a synthetic mismatch via a doctored
// oracle comparison (a case whose oracle rows are compared against a
// pipeline run of a DIFFERENT config is not guaranteed to mismatch, so
// instead this exercises the cheap structural properties: the minimized
// case keeps the seed and params, and never exceeds the original sizes).
func TestMinimizerStructural(t *testing.T) {
	c, err := NewCase(7, 300)
	if err != nil {
		t.Fatal(err)
	}
	// A passing case must come back unchanged (no predicate ever fails).
	min := Minimize(c, Config{MaxBatch: 64, Shards: 1}, 10)
	if len(min.Queries) != len(c.Queries) || len(min.Trace) != len(c.Trace) {
		t.Fatalf("minimizer shrank a passing case: %d/%d queries, %d/%d packets",
			len(min.Queries), len(c.Queries), len(min.Trace), len(c.Trace))
	}
	if min.Seed != c.Seed {
		t.Fatalf("minimizer changed seed")
	}
}
