// Package netflow synthesizes NetFlow-style flow records, the paper's
// motivating example for multi-timestamp ordering properties (§2.1): "a
// stream of Netflow records produced by a router will have monotonically
// increasing end timestamps, and generally (but not monotonically)
// increasing start timestamps ... all Netflow records are dumped every 30
// seconds. Therefore ... the start attribute is banded-increasing(30 sec)".
//
// Records are carried as raw 32-byte payloads in pkt.Packet containers
// (one record per packet, the record stream a collector would emit after
// splitting export datagrams), interpreted by nf_* functions registered
// in the pkt interpretation library.
package netflow

import (
	"container/heap"
	"encoding/binary"
	"fmt"
	"math/rand"

	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// RecordLen is the wire size of one record.
const RecordLen = 32

// Field offsets within a record.
const (
	offSrcIP   = 0
	offDstIP   = 4
	offSrcPort = 8
	offDstPort = 10
	offProto   = 12
	offFlags   = 13
	offPackets = 16
	offBytes   = 20
	offFirst   = 24 // start timestamp, seconds
	offLast    = 28 // end timestamp, seconds
)

// SegmentSeconds is the router's flush interval: long flows are chopped
// into segments this long, which is exactly why start timestamps are
// banded-increasing(SegmentSeconds).
const SegmentSeconds = 30

// Record is one decoded flow record.
type Record struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Proto, Flags     uint8
	Packets, Bytes   uint32
	First, Last      uint32 // seconds
}

// Encode packs the record into a packet with the given export timestamp
// (microseconds).
func (r Record) Encode(exportUsec uint64) pkt.Packet {
	data := make([]byte, RecordLen)
	binary.BigEndian.PutUint32(data[offSrcIP:], r.SrcIP)
	binary.BigEndian.PutUint32(data[offDstIP:], r.DstIP)
	binary.BigEndian.PutUint16(data[offSrcPort:], r.SrcPort)
	binary.BigEndian.PutUint16(data[offDstPort:], r.DstPort)
	data[offProto] = r.Proto
	data[offFlags] = r.Flags
	binary.BigEndian.PutUint32(data[offPackets:], r.Packets)
	binary.BigEndian.PutUint32(data[offBytes:], r.Bytes)
	binary.BigEndian.PutUint32(data[offFirst:], r.First)
	binary.BigEndian.PutUint32(data[offLast:], r.Last)
	return pkt.Packet{TS: exportUsec, WireLen: RecordLen, Data: data}
}

// Decode parses a record packet.
func Decode(p *pkt.Packet) (Record, error) {
	if len(p.Data) < RecordLen {
		return Record{}, fmt.Errorf("netflow: short record (%d bytes)", len(p.Data))
	}
	return Record{
		SrcIP:   binary.BigEndian.Uint32(p.Data[offSrcIP:]),
		DstIP:   binary.BigEndian.Uint32(p.Data[offDstIP:]),
		SrcPort: binary.BigEndian.Uint16(p.Data[offSrcPort:]),
		DstPort: binary.BigEndian.Uint16(p.Data[offDstPort:]),
		Proto:   p.Data[offProto],
		Flags:   p.Data[offFlags],
		Packets: binary.BigEndian.Uint32(p.Data[offPackets:]),
		Bytes:   binary.BigEndian.Uint32(p.Data[offBytes:]),
		First:   binary.BigEndian.Uint32(p.Data[offFirst:]),
		Last:    binary.BigEndian.Uint32(p.Data[offLast:]),
	}, nil
}

func nfRaw(name string, off, width int, ty schema.Type) {
	raw := pkt.RawRef{Off: off, Width: width}
	pkt.RegisterInterp(&pkt.FieldSpec{
		Name: name, Type: ty, Raw: &raw, NeedBytes: raw.End(),
		Extract: func(p *pkt.Packet) (schema.Value, bool) {
			v, ok := raw.Read(p)
			if !ok {
				return schema.Null, false
			}
			if ty == schema.TIP {
				return schema.MakeIP(uint32(v)), true
			}
			return schema.MakeUint(v), true
		},
	})
}

func init() {
	nfRaw("nf_src_ip", offSrcIP, 4, schema.TIP)
	nfRaw("nf_dest_ip", offDstIP, 4, schema.TIP)
	nfRaw("nf_src_port", offSrcPort, 2, schema.TUint)
	nfRaw("nf_dest_port", offDstPort, 2, schema.TUint)
	nfRaw("nf_proto", offProto, 1, schema.TUint)
	nfRaw("nf_tcp_flags", offFlags, 1, schema.TUint)
	nfRaw("nf_packets", offPackets, 4, schema.TUint)
	nfRaw("nf_bytes", offBytes, 4, schema.TUint)
	nfRaw("nf_start_time", offFirst, 4, schema.TUint)
	nfRaw("nf_end_time", offLast, 4, schema.TUint)
}

// Schema returns the NETFLOW protocol schema with the paper's ordering
// properties: export time and end time increasing, start time
// banded-increasing(30) and, within a flow 5-tuple, increasing.
func Schema() *schema.Schema {
	inc := schema.Ordering{Kind: schema.OrderIncreasing}
	return &schema.Schema{
		Name: "NETFLOW",
		Kind: schema.KindProtocol,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint, Interp: "get_time", Ordering: inc},
			{Name: "start_time", Type: schema.TUint, Interp: "nf_start_time",
				Ordering: schema.Ordering{Kind: schema.OrderBandedIncreasing, Band: SegmentSeconds}},
			{Name: "end_time", Type: schema.TUint, Interp: "nf_end_time", Ordering: inc},
			{Name: "srcIP", Type: schema.TIP, Interp: "nf_src_ip"},
			{Name: "destIP", Type: schema.TIP, Interp: "nf_dest_ip"},
			{Name: "srcPort", Type: schema.TUint, Interp: "nf_src_port"},
			{Name: "destPort", Type: schema.TUint, Interp: "nf_dest_port"},
			{Name: "protocol", Type: schema.TUint, Interp: "nf_proto"},
			{Name: "tcp_flags", Type: schema.TUint, Interp: "nf_tcp_flags"},
			{Name: "packets", Type: schema.TUint, Interp: "nf_packets"},
			{Name: "bytes", Type: schema.TUint, Interp: "nf_bytes"},
		},
	}
}

// Register adds the NETFLOW schema to a catalog.
func Register(cat *schema.Catalog) error { return cat.Register(Schema()) }

// Config tunes the flow synthesizer.
type Config struct {
	Seed            int64
	FlowsPerSecond  float64 // new flow arrival rate
	MeanDurationSec float64 // mean flow lifetime
	MeanPps         float64 // mean packets per second per flow
	StartSec        uint64
}

// Generator produces flow records with monotone end timestamps and
// banded-increasing start timestamps, exactly the ordering structure the
// paper describes.
type Generator struct {
	cfg       Config
	rng       *rand.Rand
	active    flowHeap
	nextSpawn float64
	count     uint64
}

type liveFlow struct {
	rec      Record
	segStart float64
	endsAt   float64
	pps      float64
	nextEmit float64
}

type flowHeap []*liveFlow

func (h flowHeap) Len() int           { return len(h) }
func (h flowHeap) Less(i, j int) bool { return h[i].nextEmit < h[j].nextEmit }
func (h flowHeap) Swap(i, j int)      { h[i], h[j] = h[j], h[i] }
func (h *flowHeap) Push(x any)        { *h = append(*h, x.(*liveFlow)) }
func (h *flowHeap) Pop() any {
	old := *h
	n := len(old)
	f := old[n-1]
	*h = old[:n-1]
	return f
}

// NewGenerator builds a record synthesizer.
func NewGenerator(cfg Config) (*Generator, error) {
	if cfg.FlowsPerSecond <= 0 || cfg.MeanDurationSec <= 0 || cfg.MeanPps <= 0 {
		return nil, fmt.Errorf("netflow: rates and durations must be positive")
	}
	g := &Generator{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
	g.nextSpawn = float64(cfg.StartSec) + g.rng.ExpFloat64()/cfg.FlowsPerSecond
	return g, nil
}

func (g *Generator) spawn(at float64) {
	f := &liveFlow{
		rec: Record{
			SrcIP:   0x0a000000 | uint32(g.rng.Intn(1<<20)),
			DstIP:   0xc0a80000 | uint32(g.rng.Intn(1<<12)),
			SrcPort: uint16(1024 + g.rng.Intn(60000)),
			DstPort: []uint16{80, 443, 53, 25, 8080}[g.rng.Intn(5)],
			Proto:   pkt.ProtoTCP,
			Flags:   pkt.FlagACK,
		},
		segStart: at,
		endsAt:   at + g.rng.ExpFloat64()*g.cfg.MeanDurationSec,
		pps:      0.1 + g.rng.ExpFloat64()*g.cfg.MeanPps,
	}
	f.nextEmit = f.segEnd()
	heap.Push(&g.active, f)
}

func (f *liveFlow) segEnd() float64 {
	end := f.segStart + SegmentSeconds
	if f.endsAt < end {
		end = f.endsAt
	}
	return end
}

// Next returns the next record in export (end time) order.
func (g *Generator) Next() pkt.Packet {
	for len(g.active) == 0 || g.nextSpawn < g.active[0].nextEmit {
		g.spawn(g.nextSpawn)
		g.nextSpawn += g.rng.ExpFloat64() / g.cfg.FlowsPerSecond
	}
	f := g.active[0]
	emitAt := f.nextEmit
	dur := emitAt - f.segStart
	rec := f.rec
	rec.First = uint32(f.segStart)
	rec.Last = uint32(emitAt)
	rec.Packets = uint32(dur*f.pps) + 1
	rec.Bytes = rec.Packets * uint32(64+g.rng.Intn(1400))
	if emitAt >= f.endsAt {
		heap.Pop(&g.active)
	} else {
		f.segStart = emitAt
		f.nextEmit = f.segEnd()
		heap.Fix(&g.active, 0)
	}
	g.count++
	// Export follows the segment close after a short router delay.
	exportUsec := uint64(emitAt*1e6) + 50_000
	return rec.Encode(exportUsec)
}

// Count returns the number of records generated.
func (g *Generator) Count() uint64 { return g.count }
