// Package faultinject is a deterministic, seeded fault injector for the
// Gigascope robustness suite. It corrupts the inputs a live tap would
// corrupt — truncated captures, mangled IPv4 headers, option-bearing
// frames, clock skew on one interface — and provokes the failures the run
// time system must contain: operator panics and errors (FaultyOp), stalled
// subscribers (Staller), and ring-saturating bursts (SaturateWindow).
//
// Every decision comes from a single seeded PRNG consumed in call order,
// so a run over a fixed packet sequence reproduces the exact same fault
// placement and the regression tests can pin exact counters.
package faultinject

import (
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"gigascope/internal/pkt"
)

// Kind identifies a fault class.
type Kind int

const (
	// KindTruncate cuts the captured bytes mid-header (short snap).
	KindTruncate Kind = iota
	// KindBadIHL writes an IHL nibble below the 20-byte minimum.
	KindBadIHL
	// KindBadTotalLen writes a total-length exceeding the frame.
	KindBadTotalLen
	// KindOptions inserts garbage IPv4 options: the header stays
	// self-consistent (IHL, total-length, checksum updated) but the
	// transport header shifts — the layout fixed-offset readers misread.
	KindOptions
	// KindClockSkew jumps the packet timestamp forward.
	KindClockSkew
	// KindClockRegress pulls the packet timestamp backward.
	KindClockRegress
	numKinds
)

func (k Kind) String() string {
	switch k {
	case KindTruncate:
		return "truncate"
	case KindBadIHL:
		return "bad-ihl"
	case KindBadTotalLen:
		return "bad-total-length"
	case KindOptions:
		return "ip-options"
	case KindClockSkew:
		return "clock-skew"
	case KindClockRegress:
		return "clock-regress"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Config sets the per-packet probability of each fault kind. Rates are
// independent fractions of the packet stream; at most one fault applies
// per packet (first match in Kind order wins on the single roll).
type Config struct {
	Seed int64

	Truncate    float64
	BadIHL      float64
	BadTotalLen float64
	Options     float64

	// ClockSkew/ClockRegress move packet timestamps by ClockJumpUsec
	// forward or backward, modelling a misbehaving capture clock on one
	// interface.
	ClockSkew     float64
	ClockRegress  float64
	ClockJumpUsec uint64
}

// DefaultConfig returns the default fault rates: a few percent of dirty
// frames of each class, the mix the acceptance tests run under.
func DefaultConfig(seed int64) Config {
	return Config{
		Seed:          seed,
		Truncate:      0.01,
		BadIHL:        0.01,
		BadTotalLen:   0.01,
		Options:       0.02,
		ClockSkew:     0.005,
		ClockRegress:  0.005,
		ClockJumpUsec: 250_000,
	}
}

// Stats counts applied faults by kind.
type Stats struct {
	Truncated    uint64
	BadIHL       uint64
	BadTotalLen  uint64
	Options      uint64
	ClockSkew    uint64
	ClockRegress uint64
	Clean        uint64 // packets passed through unfaulted
}

// Total is the number of faulted packets.
func (s Stats) Total() uint64 {
	return s.Truncated + s.BadIHL + s.BadTotalLen + s.Options + s.ClockSkew + s.ClockRegress
}

// Injector applies seeded faults to a packet stream. Apply and ApplyBatch
// serialize on an internal lock (the PRNG is the determinism anchor);
// counters are atomic and readable concurrently.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	counts [numKinds]atomic.Uint64
	clean  atomic.Uint64
}

// New builds an injector from the config.
func New(cfg Config) *Injector {
	if cfg.ClockJumpUsec == 0 {
		cfg.ClockJumpUsec = 250_000
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Stats snapshots the fault counters.
func (in *Injector) Stats() Stats {
	return Stats{
		Truncated:    in.counts[KindTruncate].Load(),
		BadIHL:       in.counts[KindBadIHL].Load(),
		BadTotalLen:  in.counts[KindBadTotalLen].Load(),
		Options:      in.counts[KindOptions].Load(),
		ClockSkew:    in.counts[KindClockSkew].Load(),
		ClockRegress: in.counts[KindClockRegress].Load(),
		Clean:        in.clean.Load(),
	}
}

// Apply rolls the dice for one packet. A clean packet is returned as-is; a
// faulted packet is returned as a mutated copy (the input is never
// touched, so a packet shared across interfaces faults on one only).
func (in *Injector) Apply(p *pkt.Packet) (*pkt.Packet, Kind, bool) {
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.applyLocked(p)
}

// ApplyBatch applies faults across one poll window, returning a window
// with faulted packets replaced by their mutated copies. The input slice
// and packets are not modified; when no fault lands the input slice is
// returned unchanged.
func (in *Injector) ApplyBatch(ps []*pkt.Packet) []*pkt.Packet {
	in.mu.Lock()
	defer in.mu.Unlock()
	out := ps
	copied := false
	for i, p := range ps {
		q, _, faulted := in.applyLocked(p)
		if !faulted {
			continue
		}
		if !copied {
			out = append([]*pkt.Packet(nil), ps...)
			copied = true
		}
		out[i] = q
	}
	return out
}

func (in *Injector) applyLocked(p *pkt.Packet) (*pkt.Packet, Kind, bool) {
	roll := in.rng.Float64()
	c := in.cfg
	cum := 0.0
	kind := Kind(-1)
	for _, e := range [...]struct {
		k    Kind
		rate float64
	}{
		{KindTruncate, c.Truncate},
		{KindBadIHL, c.BadIHL},
		{KindBadTotalLen, c.BadTotalLen},
		{KindOptions, c.Options},
		{KindClockSkew, c.ClockSkew},
		{KindClockRegress, c.ClockRegress},
	} {
		cum += e.rate
		if roll < cum {
			kind = e.k
			break
		}
	}
	if kind < 0 {
		in.clean.Add(1)
		return p, 0, false
	}
	q := in.mutate(p, kind)
	if q == nil { // fault not applicable to this frame: pass through
		in.clean.Add(1)
		return p, 0, false
	}
	in.counts[kind].Add(1)
	return q, kind, true
}

// mutate builds the faulted copy, or returns nil when the frame is too
// short to host the fault.
func (in *Injector) mutate(p *pkt.Packet, kind Kind) *pkt.Packet {
	const (
		ethLen = 14
		ipLen  = 20
	)
	q := *p
	switch kind {
	case KindTruncate:
		if len(p.Data) < 2 {
			return nil
		}
		// Cut inside the headers where it hurts: [1, min(len-1, 54)].
		lim := len(p.Data) - 1
		if lim > ethLen+ipLen+ipLen {
			lim = ethLen + ipLen + ipLen
		}
		q.Data = p.Data[:1+in.rng.Intn(lim)]
	case KindBadIHL:
		if len(p.Data) < ethLen+1 {
			return nil
		}
		q.Data = append([]byte(nil), p.Data...)
		q.Data[ethLen] = q.Data[ethLen]&0xf0 | byte(in.rng.Intn(5)) // IHL 0..4
	case KindBadTotalLen:
		if len(p.Data) < ethLen+4 {
			return nil
		}
		q.Data = append([]byte(nil), p.Data...)
		bogus := uint16(p.WireLen) + 1 + uint16(in.rng.Intn(1000))
		q.Data[ethLen+2] = byte(bogus >> 8)
		q.Data[ethLen+3] = byte(bogus)
	case KindOptions:
		return in.insertOptions(p)
	case KindClockSkew:
		q.TS = p.TS + in.cfg.ClockJumpUsec
	case KindClockRegress:
		if p.TS < in.cfg.ClockJumpUsec {
			q.TS = 0
		} else {
			q.TS = p.TS - in.cfg.ClockJumpUsec
		}
	}
	return &q
}

// insertOptions rebuilds the frame with 4–40 bytes of garbage IPv4
// options between the fixed IP header and the transport header, keeping
// the header self-consistent: IHL raised, total-length grown, checksum
// recomputed. The option *content* is random garbage; the layout is what
// a real option-bearing packet has, so IHL-honoring readers still find
// the ports while fixed-offset readers land inside the options.
func (in *Injector) insertOptions(p *pkt.Packet) *pkt.Packet {
	const (
		ethLen = 14
		ipLen  = 20
	)
	if len(p.Data) < ethLen+ipLen {
		return nil
	}
	if p.Data[ethLen]&0x0f != 5 { // already has options (or corrupt): skip
		return nil
	}
	optWords := 1 + in.rng.Intn(10) // IHL 6..15
	opts := make([]byte, optWords*4)
	in.rng.Read(opts)
	data := make([]byte, 0, len(p.Data)+len(opts))
	data = append(data, p.Data[:ethLen+ipLen]...)
	data = append(data, opts...)
	data = append(data, p.Data[ethLen+ipLen:]...)
	data[ethLen] = 0x40 | byte(5+optWords)
	total := uint16(data[ethLen+2])<<8 | uint16(data[ethLen+3])
	total += uint16(len(opts))
	data[ethLen+2] = byte(total >> 8)
	data[ethLen+3] = byte(total)
	data[ethLen+10], data[ethLen+11] = 0, 0
	sum := ipChecksum(data[ethLen : ethLen+ipLen+len(opts)])
	data[ethLen+10] = byte(sum >> 8)
	data[ethLen+11] = byte(sum)
	q := *p
	q.Data = data
	q.WireLen = p.WireLen + len(opts)
	return &q
}

// ipChecksum is the RFC 791 ones'-complement header checksum.
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(hdr[i])<<8 | uint32(hdr[i+1])
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// SaturateWindow stamps every packet in the window with the same
// timestamp: a bound capture stack then sees a full poll window arrive in
// zero virtual time — the ring-saturation burst regime (interrupt
// livelock, §4) — without needing a faster generator.
func SaturateWindow(ps []*pkt.Packet, ts uint64) {
	for _, p := range ps {
		p.TS = ts
	}
}
