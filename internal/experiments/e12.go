package experiments

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
	"time"

	"gigascope/internal/core"
	"gigascope/internal/gsql"
	"gigascope/internal/pkt"
	"gigascope/internal/rts"
)

// E12: multi-query sharing (paper §5). Fifty simultaneous queries — ten
// distinct LFTA templates (per-port cheap predicates) times five HFTA
// variants (payload substring scans) — run over the same trace twice:
// once compiled as one script with the cross-query rewrites on
// (shared-LFTA elimination + common prefilter), once with
// Config.DisableSharing. The comparison reports instantiated LFTA count,
// capture-path predicate work per packet, throughput, and whether the
// two runs' outputs are byte-identical (they must be: sharing is a pure
// plan rewrite).
//
// Predicate work is counted at the capture path: with sharing off, every
// packet is offered to all 50 LFTAs and each evaluates its own conjuncts
// (upper bound: delivered packets x conjunct count); with sharing on,
// the per-interface prefilter evaluates each distinct term once per
// packet (measured exactly by the gate) and member LFTAs only see
// packets passing their mask.

// e12Templates is the LFTA-template count (distinct cheap predicates).
const e12Templates = 10

// e12Variants is the HFTA-variant count per template.
const e12Variants = 5

// e12Script builds the 50-query workload. All variants of one template
// share projection and cheap conjuncts — only the payload needle above
// the boundary differs — so sharing folds each template's five LFTAs
// into one.
func e12Script() string {
	ports := []int{80, 443, 8080, 53, 25, 110, 143, 993, 8443, 3128}
	minLen := []int{60, 60, 60, 64, 64, 68, 68, 72, 72, 76}
	needles := []string{"GET", "POST", "HTTP", "HOST", "USER"}
	var b strings.Builder
	for t := 0; t < e12Templates; t++ {
		for v := 0; v < e12Variants; v++ {
			if t+v > 0 {
				b.WriteString(";\n")
			}
			fmt.Fprintf(&b, `DEFINE { query_name q%d_%d; }
SELECT time, total_length FROM eth0.TCP
WHERE destPort = %d and total_length >= %d and str_find_substr(payload, '%s')`,
				t, v, ports[t], minLen[t], needles[v])
		}
	}
	return b.String()
}

// e12Trace cycles destination ports over the ten template ports plus two
// dark ports, with payloads cycling the needle set plus noise.
func e12Trace(n int) []*pkt.Packet {
	ports := []uint16{80, 443, 8080, 53, 25, 110, 143, 993, 8443, 3128, 6881, 12345}
	payloads := [][]byte{
		[]byte("GET /index.html HTTP/1.1 HOST: example.com"),
		[]byte("POST /api/v1 HTTP/1.1 USER-agent: none"),
		[]byte("HTTP/1.1 200 OK"),
		[]byte("xxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxxx"),
		[]byte("USER anonymous"),
		[]byte("yyyyyyyyyyyyyy"),
	}
	out := make([]*pkt.Packet, n)
	for i := 0; i < n; i++ {
		p := pkt.BuildTCP(1_000_000+uint64(i)*100, pkt.TCPSpec{
			SrcIP:   0x0a000000 + uint32(i%256),
			DstIP:   0xc0a80001,
			DstPort: ports[i%len(ports)],
			Payload: payloads[i%len(payloads)][:len(payloads[i%len(payloads)])*((i/7)%3+1)/3],
		})
		out[i] = &p
	}
	return out
}

// E12Row is one mode of the comparison.
type E12Row struct {
	Sharing         bool
	Queries         int
	LFTANodes       int     // instantiated LFTA runtime nodes
	PrefilterGroups int     // installed gate groups (0 with sharing off)
	PrefilterTerms  int     // distinct hoisted terms
	Packets         uint64  // trace length
	PktsPerSecond   float64 // injection throughput (wall clock)
	// PredEvals is the capture-path predicate work: gate term evaluations
	// (measured) plus packets delivered to each LFTA times its conjunct
	// count (upper bound without short-circuiting).
	PredEvals   uint64
	EvalsPerPkt float64
	OutputRows  uint64
}

// E12 runs the workload in both modes and verifies output equivalence.
// It returns the two rows (sharing off, sharing on) and whether every
// query's output row multiset was byte-identical across modes.
func E12(packets int) ([]E12Row, bool, error) {
	script := e12Script()
	trace := e12Trace(packets)
	offRow, offRows, err := e12Run(script, trace, true)
	if err != nil {
		return nil, false, err
	}
	onRow, onRows, err := e12Run(script, trace, false)
	if err != nil {
		return nil, false, err
	}
	identical := len(offRows) == len(onRows)
	if identical {
		for name, rows := range offRows {
			if !equalSorted(rows, onRows[name]) {
				identical = false
				break
			}
		}
	}
	return []E12Row{offRow, onRow}, identical, nil
}

func e12Run(scriptText string, trace []*pkt.Packet, disableSharing bool) (E12Row, map[string][]string, error) {
	cat, err := newCatalog()
	if err != nil {
		return E12Row{}, nil, err
	}
	mgr := rts.NewManager(cat, rts.Config{RingSize: 8192, InboxDepth: 1024})
	script, err := gsql.ParseScript(scriptText)
	if err != nil {
		return E12Row{}, nil, err
	}
	// The same script-as-one-unit path the root AddScript takes: compile
	// the whole forest (rewrite passes on unless disabled), register every
	// query, install the extracted prefilter gates.
	res, err := core.CompileScriptPlan(cat, script, &core.Options{DisableSharing: disableSharing})
	if err != nil {
		return E12Row{}, nil, err
	}
	for _, cq := range res.Queries {
		if err := mgr.AddQuery(cq, nil); err != nil {
			return E12Row{}, nil, err
		}
	}
	if len(res.Prefilters) > 0 {
		if err := mgr.InstallPrefilters(res.Prefilters); err != nil {
			return E12Row{}, nil, err
		}
	}

	// Static conjunct counts per LFTA node, from the compiled plans. A
	// shared node appears in its owner's plan only, so the map naturally
	// counts it once.
	conjuncts := map[string]int{}
	var names []string
	for _, cq := range res.Queries {
		names = append(names, cq.Name)
		for _, n := range cq.Nodes {
			if n.Level == core.LevelLFTA {
				conjuncts[strings.ToLower(n.Name)] = n.PredConjuncts()
			}
		}
	}
	if len(names) != e12Templates*e12Variants {
		return E12Row{}, nil, fmt.Errorf("experiments: E12: expected %d queries, compiled %d",
			e12Templates*e12Variants, len(names))
	}

	rows := make(map[string][]string, len(names))
	var wg sync.WaitGroup
	var mu sync.Mutex
	for _, name := range names {
		sub, err := mgr.Subscribe(name, 8192)
		if err != nil {
			return E12Row{}, nil, err
		}
		wg.Add(1)
		go func(name string, sub *rts.Subscription) {
			defer wg.Done()
			var out []string
			for b := range sub.C {
				for _, m := range b {
					if m.IsHeartbeat() {
						continue
					}
					out = append(out, string(m.Tuple.Pack(nil)))
				}
			}
			sort.Strings(out)
			mu.Lock()
			rows[name] = out
			mu.Unlock()
		}(name, sub)
	}
	if err := mgr.Start(); err != nil {
		return E12Row{}, nil, err
	}

	start := time.Now()
	const chunk = 256
	for i := 0; i < len(trace); i += chunk {
		end := i + chunk
		if end > len(trace) {
			end = len(trace)
		}
		mgr.InjectBatch("eth0", trace[i:end])
	}
	elapsed := time.Since(start)
	mgr.Stop()
	wg.Wait()

	row := E12Row{
		Sharing: !disableSharing,
		Queries: len(names),
		Packets: uint64(len(trace)),
	}
	if elapsed > 0 {
		row.PktsPerSecond = float64(len(trace)) / elapsed.Seconds()
	}
	for _, ns := range mgr.Stats() {
		if ns.Level != core.LevelLFTA {
			continue
		}
		row.LFTANodes++
		row.PredEvals += ns.Packets * uint64(conjuncts[strings.ToLower(ns.Name)])
	}
	for _, is := range mgr.IfaceStats() {
		row.PrefilterGroups += is.PrefilterGroups
		row.PrefilterTerms += is.PrefilterTerms
		row.PredEvals += is.PrefilterEvals
	}
	if row.Packets > 0 {
		row.EvalsPerPkt = float64(row.PredEvals) / float64(row.Packets)
	}
	for _, rs := range rows {
		row.OutputRows += uint64(len(rs))
	}
	return row, rows, nil
}

func equalSorted(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// PrintE12 renders the comparison.
func PrintE12(w io.Writer, rows []E12Row, identical bool) {
	fmt.Fprintf(w, "E12: multi-query sharing — %d queries (%d LFTA templates x %d HFTA variants)\n",
		e12Templates*e12Variants, e12Templates, e12Variants)
	fmt.Fprintf(w, "  %-8s %6s %6s %7s %10s %12s %10s %10s\n",
		"sharing", "lftas", "groups", "terms", "pkts", "predEvals", "evals/pkt", "pkts/s")
	for _, r := range rows {
		mode := "off"
		if r.Sharing {
			mode = "on"
		}
		fmt.Fprintf(w, "  %-8s %6d %6d %7d %10d %12d %10.1f %10.0f\n",
			mode, r.LFTANodes, r.PrefilterGroups, r.PrefilterTerms,
			r.Packets, r.PredEvals, r.EvalsPerPkt, r.PktsPerSecond)
	}
	if len(rows) == 2 && rows[1].PredEvals > 0 {
		fmt.Fprintf(w, "  predicate-eval reduction: %.1fx; LFTA instantiation: %d -> %d\n",
			float64(rows[0].PredEvals)/float64(rows[1].PredEvals),
			rows[0].LFTANodes, rows[1].LFTANodes)
	}
	if identical {
		fmt.Fprintln(w, "  outputs byte-identical across modes")
	} else {
		fmt.Fprintln(w, "  WARNING: outputs differ between sharing modes")
	}
}
