package lpm

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"gigascope/internal/schema"
)

func mustIP(t *testing.T, s string) uint32 {
	t.Helper()
	a, err := schema.ParseIP(s)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestLookupLongestWins(t *testing.T) {
	tbl := New()
	ins := []struct {
		prefix string
		id     uint64
	}{
		{"10.0.0.0/8", 1},
		{"10.1.0.0/16", 2},
		{"10.1.2.0/24", 3},
		{"10.1.2.3/32", 4},
		{"192.168.0.0/16", 5},
	}
	for _, in := range ins {
		p, l, err := ParsePrefix(in.prefix)
		if err != nil {
			t.Fatal(err)
		}
		if err := tbl.Insert(p, l, in.id); err != nil {
			t.Fatal(err)
		}
	}
	if tbl.Len() != 5 {
		t.Errorf("Len = %d", tbl.Len())
	}
	cases := []struct {
		addr string
		id   uint64
		ok   bool
	}{
		{"10.1.2.3", 4, true},
		{"10.1.2.4", 3, true},
		{"10.1.3.1", 2, true},
		{"10.9.9.9", 1, true},
		{"192.168.77.1", 5, true},
		{"172.16.0.1", 0, false},
	}
	for _, c := range cases {
		got, ok := tbl.Lookup(mustIP(t, c.addr))
		if ok != c.ok || got != c.id {
			t.Errorf("Lookup(%s) = %d, %v; want %d, %v", c.addr, got, ok, c.id, c.ok)
		}
	}
}

func TestDefaultRoute(t *testing.T) {
	tbl := New()
	if err := tbl.Insert(0, 0, 99); err != nil {
		t.Fatal(err)
	}
	for _, addr := range []uint32{0, 1, 0xffffffff, 0x0a000001} {
		if id, ok := tbl.Lookup(addr); !ok || id != 99 {
			t.Errorf("Lookup(%#x) = %d, %v", addr, id, ok)
		}
	}
}

func TestInsertOverwriteAndHostBits(t *testing.T) {
	tbl := New()
	p, l, _ := ParsePrefix("10.0.0.0/8")
	if err := tbl.Insert(p, l, 1); err != nil {
		t.Fatal(err)
	}
	if err := tbl.Insert(p, l, 2); err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 1 {
		t.Errorf("Len after overwrite = %d", tbl.Len())
	}
	if id, _ := tbl.Lookup(mustIP(t, "10.5.5.5")); id != 2 {
		t.Errorf("overwrite: id = %d", id)
	}
	// Host bits set in the prefix are masked, not rejected.
	if err := tbl.Insert(mustIP(t, "10.1.2.3"), 16, 7); err != nil {
		t.Fatal(err)
	}
	if id, _ := tbl.Lookup(mustIP(t, "10.1.200.200")); id != 7 {
		t.Errorf("host-bit insert: id = %d", id)
	}
	if err := tbl.Insert(0, 33, 1); err == nil {
		t.Error("Insert(len 33) accepted")
	}
}

func TestParsePrefix(t *testing.T) {
	p, l, err := ParsePrefix("10.0.0.1")
	if err != nil || l != 32 || p != 0x0a000001 {
		t.Errorf("bare address: %#x/%d, %v", p, l, err)
	}
	for _, bad := range []string{"10.0.0.0/33", "10.0.0.0/x", "zap/8", "10.0.0.0/-1"} {
		if _, _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) succeeded", bad)
		}
	}
}

func TestReadTableFile(t *testing.T) {
	src := `# AT&T peer table (illustrative)
10.0.0.0/8      1001
192.168.0.0/16  1002

# default
0.0.0.0/0       1
`
	tbl, err := Read(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	if tbl.Len() != 3 {
		t.Errorf("Len = %d", tbl.Len())
	}
	if id, _ := tbl.Lookup(mustIP(t, "10.1.1.1")); id != 1001 {
		t.Errorf("id = %d", id)
	}
	if id, _ := tbl.Lookup(mustIP(t, "8.8.8.8")); id != 1 {
		t.Errorf("default id = %d", id)
	}
	for _, bad := range []string{"10.0.0.0/8", "10.0.0.0/8 x", "1.2.3.4/40 1", "a b c"} {
		if _, err := Read(strings.NewReader(bad)); err == nil {
			t.Errorf("Read(%q) succeeded", bad)
		}
	}
}

// naiveLookup is the reference implementation: scan all prefixes, keep the
// longest match.
type naiveEntry struct {
	prefix uint32
	length int
	id     uint64
}

func naiveLookup(entries []naiveEntry, addr uint32) (uint64, bool) {
	best := -1
	var bestID uint64
	for _, e := range entries {
		mask := uint32(0)
		if e.length > 0 {
			mask = ^uint32(0) << uint(32-e.length)
		}
		if addr&mask == e.prefix&mask && e.length > best {
			best, bestID = e.length, e.id
		}
	}
	return bestID, best >= 0
}

func TestLookupMatchesNaiveProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		tbl := New()
		var entries []naiveEntry
		byKey := make(map[uint64]uint64) // dedupe (prefix,len) like the trie does
		for i := 0; i < 50; i++ {
			length := r.Intn(33)
			prefix := uint32(r.Uint64())
			if length < 32 {
				prefix &= ^uint32(0) << uint(32-length)
			}
			if length == 0 {
				prefix = 0
			}
			id := uint64(i + 1)
			if err := tbl.Insert(prefix, length, id); err != nil {
				return false
			}
			byKey[uint64(prefix)<<6|uint64(length)] = id
		}
		for k, id := range byKey {
			entries = append(entries, naiveEntry{prefix: uint32(k >> 6), length: int(k & 63), id: id})
		}
		for i := 0; i < 200; i++ {
			addr := uint32(rng.Uint64())
			gotID, gotOK := tbl.Lookup(addr)
			wantID, wantOK := naiveLookup(entries, addr)
			if gotOK != wantOK || (gotOK && gotID != wantID) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}
