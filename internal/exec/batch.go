package exec

// Batch is an ordered run of messages moved through the pipeline as one
// unit. Batching amortizes the per-tuple channel, mutex, and atomic-counter
// costs of the hot path (the costs the paper's LFTA design exists to keep
// off the capture path, §3) without changing stream semantics: a batch is
// exactly the concatenation of its messages, heartbeats included, and any
// split of a message sequence into batches yields identical operator
// output (property-tested in batch_test.go).
//
// Batches are immutable once emitted: a publisher may hand the same Batch
// to many subscribers, so receivers must not modify it.
type Batch []Message

// Tuples returns the number of non-heartbeat messages in the batch.
func (b Batch) Tuples() int {
	n := 0
	for i := range b {
		if !b[i].IsHeartbeat() {
			n++
		}
	}
	return n
}

// Heartbeats returns the number of heartbeat messages in the batch.
func (b Batch) Heartbeats() int { return len(b) - b.Tuples() }

// EmitBatch receives operator output a batch at a time. The callee takes
// ownership of the batch; the caller must not reuse its backing array.
type EmitBatch func(Batch)

// BatchOperator is implemented by operators with a native batch path:
// a tight loop over the batch with amortized counter updates and a single
// output emission, avoiding per-tuple closure dispatch. Semantics must be
// identical to pushing the batch one message at a time.
type BatchOperator interface {
	Operator
	// PushBatch processes a batch of input messages from the given port
	// and emits at most a few output batches (typically one).
	PushBatch(port int, b Batch, emit EmitBatch) error
}

// PushBatch pushes a batch through op, using the operator's native batch
// implementation when it has one and falling back to a generic per-message
// adapter otherwise. The adapter preserves semantics exactly: messages are
// pushed in order and all output is gathered into one batch, emitted once.
func PushBatch(op Operator, port int, b Batch, emit EmitBatch) error {
	if bo, ok := op.(BatchOperator); ok {
		return bo.PushBatch(port, b, emit)
	}
	var out Batch
	collect := func(m Message) { out = append(out, m) }
	for i := range b {
		if err := op.Push(port, b[i], collect); err != nil {
			return err
		}
	}
	if len(out) > 0 {
		emit(out)
	}
	return nil
}

// FlushAllBatch drains op.FlushAll into a single batch emission.
func FlushAllBatch(op Operator, emit EmitBatch) error {
	var out Batch
	err := op.FlushAll(func(m Message) { out = append(out, m) })
	if len(out) > 0 {
		emit(out)
	}
	return err
}
