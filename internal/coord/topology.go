// Package coord is the placement coordinator for distributed Gigascope
// (ROADMAP item 1): it takes a compiled query script and a description of
// the host topology — which node captures which interfaces, per-node CPU
// budgets, link costs — and decides where every LFTA and HFTA runs. LFTAs
// are pinned to the hosts capturing their interfaces (the capture path is
// physical); HFTAs and reunify merges are placed greedily against the CPU
// budgets using the cost model in cost.go, fed by the per-operator cost
// data the system already measures. The result is a deployment Manifest
// the root API executes over the wire transport (ServeWire / ConnectWire /
// AddReunifyNode), across in-process Systems or real processes.
//
// Placement is deterministic given (plan, topology, seed), so it composes
// with the differential harness: the same inputs always yield the same
// manifest, byte for byte.
package coord

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// ParseError is a positioned topology-parse or validation error. Every
// malformed input returns one of these — never a panic — so the parser is
// safe on untrusted bytes (FuzzParseTopology pins this).
type ParseError struct {
	Line, Col int
	Msg       string
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("topology:%d:%d: %s", e.Line, e.Col, e.Msg)
}

func perr(p pos, format string, args ...any) error {
	return &ParseError{Line: p.line, Col: p.col, Msg: fmt.Sprintf(format, args...)}
}

// Capture is one interface (or one partition of one interface) captured
// by a topology node. Of == 1 means the node captures the whole
// interface; Of == k > 1 means the interface's traffic is split k ways
// and this node receives partition Part (packets with index ≡ Part mod
// k, see Router).
type Capture struct {
	Interface string
	Part, Of  int
}

func (c Capture) String() string {
	if c.Of <= 1 {
		return c.Interface
	}
	return fmt.Sprintf("%s[%d/%d]", c.Interface, c.Part, c.Of)
}

// TopoNode is one host in the topology.
type TopoNode struct {
	Name string
	// CPU is the host's processing budget in cost-model units (see
	// cost.go); placement packs operators against it.
	CPU float64
	// Captures lists the interfaces (or interface partitions) whose
	// packets arrive at this host. LFTAs over them are pinned here.
	Captures []Capture
	// Listen is the wire-transport address this host exports streams on
	// ("unix:/path", "tcp:host:port"). Empty means the runner assigns
	// one (in-process clusters use anonymous unix sockets).
	Listen string
	// Uplink names the host this node forwards toward in the capture →
	// aggregation hierarchy; UplinkCost is the relative cost of that
	// link (default 1). The uplink forest defines LinkCost.
	Uplink     string
	UplinkCost float64
	// IsSink marks the host where query outputs collect (at most one).
	IsSink bool

	pos       pos
	uplinkPos pos
}

// Topology is a parsed, validated host topology.
type Topology struct {
	Nodes  []*TopoNode // declaration order
	byName map[string]*TopoNode
}

// Node returns the named host (case-sensitive), or nil.
func (t *Topology) Node(name string) *TopoNode { return t.byName[name] }

// Sink returns the output-collection host: the declared sink, else the
// last node that captures nothing, else the last node.
func (t *Topology) Sink() *TopoNode {
	for _, n := range t.Nodes {
		if n.IsSink {
			return n
		}
	}
	for i := len(t.Nodes) - 1; i >= 0; i-- {
		if len(t.Nodes[i].Captures) == 0 {
			return t.Nodes[i]
		}
	}
	return t.Nodes[len(t.Nodes)-1]
}

// Captors returns the hosts capturing the interface, ordered by
// partition index (one element with Of==1 for whole capture). Interface
// matching is case-insensitive; "" means the default interface.
func (t *Topology) Captors(iface string) []*TopoNode {
	if iface == "" {
		iface = "default"
	}
	key := strings.ToLower(iface)
	type captor struct {
		n    *TopoNode
		part int
	}
	var cs []captor
	for _, n := range t.Nodes {
		for _, c := range n.Captures {
			if strings.ToLower(c.Interface) == key {
				cs = append(cs, captor{n, c.Part})
			}
		}
	}
	sort.Slice(cs, func(i, j int) bool { return cs[i].part < cs[j].part })
	out := make([]*TopoNode, len(cs))
	for i, c := range cs {
		out[i] = c.n
	}
	return out
}

// CaptureOf returns the capture entry of iface on host (ok=false if the
// host does not capture it).
func (n *TopoNode) CaptureOf(iface string) (Capture, bool) {
	if iface == "" {
		iface = "default"
	}
	for _, c := range n.Captures {
		if strings.EqualFold(c.Interface, iface) {
			return c, true
		}
	}
	return Capture{}, false
}

// LinkCost is the relative cost of moving a tuple from host a to host b,
// computed over the uplink forest: the sum of uplink costs along the path
// between them (roots of different trees are bridged at cost 1 each).
// Same-host cost is 0; hosts with no declared uplinks cost 2 apart.
func (t *Topology) LinkCost(a, b string) float64 {
	if a == b {
		return 0
	}
	pa, pb := t.pathToRoot(a), t.pathToRoot(b)
	if len(pa) == 0 || len(pb) == 0 {
		return 2
	}
	if pa[len(pa)-1].name != pb[len(pb)-1].name {
		// Different trees: bridge the roots.
		return chainCost(pa) + chainCost(pb) + 2
	}
	// Strip the common suffix down to the lowest common ancestor.
	for len(pa) > 1 && len(pb) > 1 && pa[len(pa)-2].name == pb[len(pb)-2].name {
		pa = pa[:len(pa)-1]
		pb = pb[:len(pb)-1]
	}
	return chainCost(pa) + chainCost(pb)
}

type hop struct {
	name string
	cost float64 // cost of the uplink hop leaving this node (0 at root)
}

func chainCost(p []hop) float64 {
	var s float64
	for _, h := range p[:len(p)-1] {
		s += h.cost
	}
	return s
}

// pathToRoot returns the uplink chain from name (inclusive) to its tree
// root (inclusive); nil for unknown hosts.
func (t *Topology) pathToRoot(name string) []hop {
	n := t.byName[name]
	if n == nil {
		return nil
	}
	var p []hop
	seen := map[string]bool{}
	for n != nil && !seen[n.Name] {
		seen[n.Name] = true
		p = append(p, hop{n.Name, n.UplinkCost})
		if n.Uplink == "" {
			return p
		}
		n = t.byName[n.Uplink]
	}
	return p // cycle guarded by validation; defensive
}

// Render writes the topology back in its source syntax. The output
// reparses to an equal topology (pinned by tests), which makes manifests
// self-describing.
func (t *Topology) Render() string {
	var b strings.Builder
	for _, n := range t.Nodes {
		fmt.Fprintf(&b, "node %s {\n", n.Name)
		fmt.Fprintf(&b, "\tcpu %s\n", strconv.FormatFloat(n.CPU, 'g', -1, 64))
		if len(n.Captures) > 0 {
			b.WriteString("\tcapture")
			for _, c := range n.Captures {
				b.WriteString(" " + c.String())
			}
			b.WriteString("\n")
		}
		if n.Listen != "" {
			fmt.Fprintf(&b, "\tlisten %s\n", n.Listen)
		}
		if n.Uplink != "" {
			fmt.Fprintf(&b, "\tuplink %s cost %s\n", n.Uplink, strconv.FormatFloat(n.UplinkCost, 'g', -1, 64))
		}
		if n.IsSink {
			b.WriteString("\tsink\n")
		}
		b.WriteString("}\n")
	}
	return b.String()
}

// ---- parser ----

type pos struct{ line, col int }

type token struct {
	text string
	pos  pos
}

// lex splits the source into words and the structural tokens '{' and
// '}'. A word is any run of characters other than whitespace, braces,
// and '#'; '#' starts a comment to end of line.
func lex(src string) []token {
	var toks []token
	line, col := 1, 1
	i := 0
	for i < len(src) {
		c := src[i]
		switch {
		case c == '\n':
			line++
			col = 1
			i++
		case c == ' ' || c == '\t' || c == '\r' || c == ';':
			col++
			i++
		case c == '#':
			for i < len(src) && src[i] != '\n' {
				i++
			}
		case c == '{' || c == '}':
			toks = append(toks, token{string(c), pos{line, col}})
			col++
			i++
		default:
			start := i
			p := pos{line, col}
			for i < len(src) {
				c := src[i]
				if c == ' ' || c == '\t' || c == '\r' || c == '\n' || c == ';' ||
					c == '{' || c == '}' || c == '#' {
					break
				}
				i++
				col++
			}
			toks = append(toks, token{src[start:i], p})
		}
	}
	return toks
}

type parser struct {
	toks []token
	i    int
	end  pos
}

func (p *parser) peek() (token, bool) {
	if p.i >= len(p.toks) {
		return token{}, false
	}
	return p.toks[p.i], true
}

func (p *parser) next() (token, bool) {
	t, ok := p.peek()
	if ok {
		p.i++
	}
	return t, ok
}

func (p *parser) lastPos() pos {
	if p.i > 0 {
		return p.toks[p.i-1].pos
	}
	return pos{1, 1}
}

var directives = map[string]bool{
	"node": true, "cpu": true, "capture": true, "listen": true,
	"uplink": true, "sink": true, "cost": true,
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for _, r := range s {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9',
			r == '_', r == '-', r == '.':
		default:
			return false
		}
	}
	return true
}

// ParseTopology parses and validates a topology description:
//
//	# capture tier
//	node capA {
//	    cpu 100
//	    capture eth0[0/2] default
//	    listen unix:/tmp/capA.sock
//	    uplink agg cost 2
//	}
//	node agg { cpu 1000; sink }
//
// Every malformed input — unknown directives, zero or negative budgets,
// duplicate node names, conflicting interface captures, unknown uplink
// targets, uplink cycles — returns a *ParseError carrying the line and
// column of the offending token.
func ParseTopology(src string) (*Topology, error) {
	p := &parser{toks: lex(src)}
	t := &Topology{byName: map[string]*TopoNode{}}
	for {
		tok, ok := p.next()
		if !ok {
			break
		}
		if tok.text != "node" {
			return nil, perr(tok.pos, "expected 'node', got %q", tok.text)
		}
		name, ok := p.next()
		if !ok {
			return nil, perr(tok.pos, "node needs a name")
		}
		if !validName(name.text) || directives[name.text] {
			return nil, perr(name.pos, "invalid node name %q", name.text)
		}
		if prev, dup := t.byName[name.text]; dup {
			_ = prev
			return nil, perr(name.pos, "duplicate node name %q", name.text)
		}
		open, ok := p.next()
		if !ok || open.text != "{" {
			return nil, perr(p.lastPos(), "node %s: expected '{'", name.text)
		}
		n := &TopoNode{Name: name.text, CPU: 100, UplinkCost: 1, pos: name.pos}
		if err := p.parseBody(n); err != nil {
			return nil, err
		}
		t.Nodes = append(t.Nodes, n)
		t.byName[n.Name] = n
	}
	if err := validate(t); err != nil {
		return nil, err
	}
	return t, nil
}

func (p *parser) parseBody(n *TopoNode) error {
	sawCPU := false
	for {
		tok, ok := p.next()
		if !ok {
			return perr(p.lastPos(), "node %s: missing '}'", n.Name)
		}
		switch tok.text {
		case "}":
			return nil
		case "cpu":
			v, ok := p.next()
			if !ok {
				return perr(tok.pos, "cpu needs a value")
			}
			f, err := strconv.ParseFloat(v.text, 64)
			if err != nil {
				return perr(v.pos, "cpu budget %q is not a number", v.text)
			}
			if f <= 0 {
				return perr(v.pos, "cpu budget must be positive, got %v", f)
			}
			if sawCPU {
				return perr(tok.pos, "node %s: duplicate cpu", n.Name)
			}
			sawCPU = true
			n.CPU = f
		case "capture":
			count := 0
			for {
				nx, ok := p.peek()
				if !ok || nx.text == "}" || directives[nx.text] {
					break
				}
				p.next()
				c, err := parseCaptureSpec(nx)
				if err != nil {
					return err
				}
				n.Captures = append(n.Captures, c)
				count++
			}
			if count == 0 {
				return perr(tok.pos, "capture needs at least one interface")
			}
		case "listen":
			v, ok := p.next()
			if !ok || v.text == "}" || directives[v.text] {
				return perr(tok.pos, "listen needs an address")
			}
			if n.Listen != "" {
				return perr(tok.pos, "node %s: duplicate listen", n.Name)
			}
			n.Listen = v.text
		case "uplink":
			v, ok := p.next()
			if !ok || v.text == "}" || directives[v.text] {
				return perr(tok.pos, "uplink needs a target node")
			}
			if n.Uplink != "" {
				return perr(tok.pos, "node %s: duplicate uplink", n.Name)
			}
			n.Uplink = v.text
			n.uplinkPos = v.pos
			if nx, ok := p.peek(); ok && nx.text == "cost" {
				p.next()
				cv, ok := p.next()
				if !ok {
					return perr(nx.pos, "cost needs a value")
				}
				f, err := strconv.ParseFloat(cv.text, 64)
				if err != nil || f <= 0 {
					return perr(cv.pos, "link cost %q must be a positive number", cv.text)
				}
				n.UplinkCost = f
			}
		case "sink":
			n.IsSink = true
		default:
			return perr(tok.pos, "unknown directive %q", tok.text)
		}
	}
}

// parseCaptureSpec parses "iface" or "iface[part/of]".
func parseCaptureSpec(tok token) (Capture, error) {
	s := tok.text
	br := strings.IndexByte(s, '[')
	if br < 0 {
		if !validName(s) {
			return Capture{}, perr(tok.pos, "invalid interface name %q", s)
		}
		return Capture{Interface: s, Part: 0, Of: 1}, nil
	}
	iface := s[:br]
	rest := s[br+1:]
	if !validName(iface) {
		return Capture{}, perr(tok.pos, "invalid interface name %q", iface)
	}
	if !strings.HasSuffix(rest, "]") {
		return Capture{}, perr(tok.pos, "malformed capture partition %q (want iface[part/of])", s)
	}
	rest = rest[:len(rest)-1]
	ps, os, ok := strings.Cut(rest, "/")
	if !ok {
		return Capture{}, perr(tok.pos, "malformed capture partition %q (want iface[part/of])", s)
	}
	part, err1 := strconv.Atoi(ps)
	of, err2 := strconv.Atoi(os)
	if err1 != nil || err2 != nil {
		return Capture{}, perr(tok.pos, "malformed capture partition %q (want iface[part/of])", s)
	}
	if of < 2 || of > 64 {
		return Capture{}, perr(tok.pos, "capture partition count %d out of range [2,64]", of)
	}
	if part < 0 || part >= of {
		return Capture{}, perr(tok.pos, "capture partition index %d out of range [0,%d)", part, of)
	}
	return Capture{Interface: iface, Part: part, Of: of}, nil
}

func validate(t *Topology) error {
	if len(t.Nodes) == 0 {
		return &ParseError{Line: 1, Col: 1, Msg: "topology declares no nodes"}
	}
	// Sink: at most one.
	var sink *TopoNode
	for _, n := range t.Nodes {
		if n.IsSink {
			if sink != nil {
				return perr(n.pos, "duplicate sink (already declared on %s)", sink.Name)
			}
			sink = n
		}
	}
	// Uplinks: targets exist, no self-links, no cycles.
	for _, n := range t.Nodes {
		if n.Uplink == "" {
			continue
		}
		if n.Uplink == n.Name {
			return perr(n.uplinkPos, "node %s uplinks to itself", n.Name)
		}
		if t.byName[n.Uplink] == nil {
			return perr(n.uplinkPos, "unknown uplink target %q", n.Uplink)
		}
	}
	for _, n := range t.Nodes {
		seen := map[string]bool{}
		for c := n; c != nil && c.Uplink != ""; c = t.byName[c.Uplink] {
			if seen[c.Name] {
				return perr(n.uplinkPos, "uplink cycle through %s", c.Name)
			}
			seen[c.Name] = true
		}
	}
	// Captures: an interface is either whole on exactly one host, or
	// partitioned with every slot 0..of-1 present exactly once and a
	// consistent partition count; one host never holds two slots.
	type slot struct {
		node string
		pos  pos
	}
	whole := map[string]slot{}
	parts := map[string]map[int]slot{}
	partOf := map[string]int{}
	for _, n := range t.Nodes {
		seenLocal := map[string]bool{}
		for _, c := range n.Captures {
			key := strings.ToLower(c.Interface)
			if seenLocal[key] {
				return perr(n.pos, "node %s captures interface %s twice", n.Name, c.Interface)
			}
			seenLocal[key] = true
			if c.Of <= 1 {
				if prev, dup := whole[key]; dup {
					return perr(n.pos, "interface %s already captured by %s", c.Interface, prev.node)
				}
				if len(parts[key]) > 0 {
					return perr(n.pos, "interface %s mixes whole and partitioned capture", c.Interface)
				}
				whole[key] = slot{n.Name, n.pos}
				continue
			}
			if _, dup := whole[key]; dup {
				return perr(n.pos, "interface %s mixes whole and partitioned capture", c.Interface)
			}
			if of, ok := partOf[key]; ok && of != c.Of {
				return perr(n.pos, "interface %s partition counts disagree (%d vs %d)", c.Interface, of, c.Of)
			}
			partOf[key] = c.Of
			if parts[key] == nil {
				parts[key] = map[int]slot{}
			}
			if prev, dup := parts[key][c.Part]; dup {
				return perr(n.pos, "interface %s partition %d already captured by %s", c.Interface, c.Part, prev.node)
			}
			parts[key][c.Part] = slot{n.Name, n.pos}
		}
	}
	for key, of := range partOf {
		for i := 0; i < of; i++ {
			if _, ok := parts[key][i]; !ok {
				return perr(t.Nodes[0].pos, "interface %s partition %d/%d captured nowhere", key, i, of)
			}
		}
	}
	return nil
}

// ---- packet routing ----

// Router maps (interface, packet index) to the capturing host, encoding
// the same partitioning rule on the traffic side that placement assumed
// on the operator side. Both the in-process Cluster and the
// multi-process coordinator use it, so the split is identical everywhere.
type Router struct {
	whole map[string]string   // iface -> host
	split map[string][]string // iface -> host per partition slot
}

// Router builds the packet router for this topology.
func (t *Topology) Router() *Router {
	r := &Router{whole: map[string]string{}, split: map[string][]string{}}
	seen := map[string]bool{}
	for _, n := range t.Nodes {
		for _, c := range n.Captures {
			key := strings.ToLower(c.Interface)
			if seen[key] {
				continue
			}
			captors := t.Captors(c.Interface)
			if c.Of <= 1 {
				r.whole[key] = captors[0].Name
			} else {
				hosts := make([]string, len(captors))
				for i, h := range captors {
					hosts[i] = h.Name
				}
				r.split[key] = hosts
			}
			seen[key] = true
		}
	}
	return r
}

// Route returns the host that captures packet number idx (0-based, per
// interface) of the named interface; ok=false when no host captures it.
func (r *Router) Route(iface string, idx uint64) (string, bool) {
	if iface == "" {
		iface = "default"
	}
	key := strings.ToLower(iface)
	if h, ok := r.whole[key]; ok {
		return h, true
	}
	if hosts, ok := r.split[key]; ok {
		return hosts[idx%uint64(len(hosts))], true
	}
	return "", false
}
