package gsql

import (
	"strconv"
	"strings"

	"gigascope/internal/schema"
)

// Parser builds the GSQL AST. Grammar summary:
//
//	script     := (protocol | query)*
//	protocol   := PROTOCOL ident [ '(' BASE ident ')' ] '{' coldef* '}'
//	coldef     := type ident [interp] [ '(' ordering ')' ] ';'
//	query      := [define] (select | merge) [';']
//	define     := DEFINE '{' (ident words ';')* '}'
//	select     := SELECT item (',' item)* FROM source (',' source)*
//	              [WHERE expr] [GROUP BY item (',' item)*] [HAVING expr]
//	merge      := MERGE colref (':' colref)* FROM source (',' source)*
//	source     := ident ['.' ident] [ident]        -- iface.proto alias
//	item       := expr [AS ident] | expr ident
//	expr       := standard precedence climbing over OR/AND/NOT/cmp/add/mul
type Parser struct {
	lex *Lexer
	tok Token
	// one token of lookahead beyond tok
	peeked  bool
	peekTok Token
}

// NewParser returns a parser over src. The first token is loaded eagerly;
// lexical errors surface on the first Parse call.
func NewParser(src string) (*Parser, error) {
	p := &Parser{lex: NewLexer(src)}
	if err := p.next(); err != nil {
		return nil, err
	}
	return p, nil
}

func (p *Parser) next() error {
	if p.peeked {
		p.tok, p.peeked = p.peekTok, false
		return nil
	}
	t, err := p.lex.Next()
	if err != nil {
		return err
	}
	p.tok = t
	return nil
}

func (p *Parser) peek() (Token, error) {
	if !p.peeked {
		t, err := p.lex.Next()
		if err != nil {
			return Token{}, err
		}
		p.peekTok, p.peeked = t, true
	}
	return p.peekTok, nil
}

func (p *Parser) expect(k TokKind) (Token, error) {
	if p.tok.Kind != k {
		return Token{}, errf(p.tok.Pos, "expected %s, found %s", k, p.tok)
	}
	t := p.tok
	if err := p.next(); err != nil {
		return Token{}, err
	}
	return t, nil
}

func (p *Parser) expectKeyword(kw string) error {
	if !p.atKeyword(kw) {
		return errf(p.tok.Pos, "expected %s, found %s", kw, p.tok)
	}
	return p.next()
}

func (p *Parser) atKeyword(kw string) bool {
	return p.tok.Kind == TokKeyword && p.tok.Text == kw
}

// atIdent reports whether the current token is the given identifier,
// case-insensitively. Used for contextual keywords (PROTOCOL, BASE) that
// are also legal column names.
func (p *Parser) atIdent(name string) bool {
	return p.tok.Kind == TokIdent && strings.EqualFold(p.tok.Text, name)
}

// ParseScript parses a whole GSQL source file.
func ParseScript(src string) (*Script, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	s := &Script{}
	for {
		// Skip stray semicolons between statements.
		for p.tok.Kind == TokSemi {
			if err := p.next(); err != nil {
				return nil, err
			}
		}
		if p.tok.Kind == TokEOF {
			return s, nil
		}
		switch {
		case p.atIdent("PROTOCOL"):
			def, err := p.parseProtocol()
			if err != nil {
				return nil, err
			}
			s.Protocols = append(s.Protocols, def)
		case p.atKeyword("DEFINE") || p.atKeyword("SELECT") || p.atKeyword("MERGE"):
			q, err := p.parseQuery()
			if err != nil {
				return nil, err
			}
			s.Queries = append(s.Queries, q)
		default:
			return nil, errf(p.tok.Pos, "expected PROTOCOL, DEFINE, SELECT, or MERGE, found %s", p.tok)
		}
	}
}

// ParseQuery parses a single query (with optional DEFINE block).
func ParseQuery(src string) (*Query, error) {
	p, err := NewParser(src)
	if err != nil {
		return nil, err
	}
	q, err := p.parseQuery()
	if err != nil {
		return nil, err
	}
	for p.tok.Kind == TokSemi {
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if p.tok.Kind != TokEOF {
		return nil, errf(p.tok.Pos, "unexpected %s after query", p.tok)
	}
	return q, nil
}

func (p *Parser) parseProtocol() (*ProtocolDef, error) {
	at := p.tok.Pos
	if err := p.next(); err != nil { // PROTOCOL
		return nil, err
	}
	name, err := p.expect(TokIdent)
	if err != nil {
		return nil, err
	}
	def := &ProtocolDef{Name: name.Text, At: at}
	if p.tok.Kind == TokLParen {
		if err := p.next(); err != nil {
			return nil, err
		}
		if !p.atIdent("BASE") {
			return nil, errf(p.tok.Pos, "expected BASE, found %s", p.tok)
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		base, err := p.expect(TokIdent)
		if err != nil {
			return nil, err
		}
		def.Base = base.Text
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokLBrace); err != nil {
		return nil, err
	}
	for p.tok.Kind != TokRBrace {
		col, err := p.parseColDef()
		if err != nil {
			return nil, err
		}
		def.Cols = append(def.Cols, col)
	}
	return def, p.next() // consume '}'
}

func (p *Parser) parseColDef() (ColDef, error) {
	at := p.tok.Pos
	tyTok, err := p.expect(TokIdent)
	if err != nil {
		return ColDef{}, err
	}
	ty, ok := schema.ParseType(tyTok.Text)
	if !ok {
		return ColDef{}, errf(tyTok.Pos, "unknown type %q", tyTok.Text)
	}
	nameTok, err := p.expect(TokIdent)
	if err != nil {
		return ColDef{}, err
	}
	col := ColDef{Type: ty, Name: nameTok.Text, At: at}
	if p.tok.Kind == TokIdent {
		col.Interp = p.tok.Text
		if err := p.next(); err != nil {
			return ColDef{}, err
		}
	}
	if p.tok.Kind == TokLParen {
		ord, err := p.parseOrdering()
		if err != nil {
			return ColDef{}, err
		}
		col.Ord = ord
	}
	_, err = p.expect(TokSemi)
	return col, err
}

// parseOrdering parses an ordering annotation:
//
//	(increasing) (strictly_increasing) (decreasing) (strictly_decreasing)
//	(monotone_nonrepeating) (banded_increasing 30)
//	(increasing_in_group srcIP destIP)
func (p *Parser) parseOrdering() (schema.Ordering, error) {
	if err := p.next(); err != nil { // '('
		return schema.NoOrder, err
	}
	kindTok, err := p.expect(TokIdent)
	if err != nil {
		return schema.NoOrder, err
	}
	var ord schema.Ordering
	switch strings.ToLower(kindTok.Text) {
	case "increasing":
		ord.Kind = schema.OrderIncreasing
	case "strictly_increasing":
		ord.Kind = schema.OrderStrictIncreasing
	case "decreasing":
		ord.Kind = schema.OrderDecreasing
	case "strictly_decreasing":
		ord.Kind = schema.OrderStrictDecreasing
	case "monotone_nonrepeating":
		ord.Kind = schema.OrderNonrepeating
	case "banded_increasing":
		ord.Kind = schema.OrderBandedIncreasing
		band, err := p.expect(TokInt)
		if err != nil {
			return schema.NoOrder, err
		}
		ord.Band, err = parseUint(band)
		if err != nil {
			return schema.NoOrder, err
		}
	case "increasing_in_group":
		ord.Kind = schema.OrderIncreasingInGroup
		for p.tok.Kind == TokIdent {
			ord.Group = append(ord.Group, p.tok.Text)
			if err := p.next(); err != nil {
				return schema.NoOrder, err
			}
			if p.tok.Kind == TokComma {
				if err := p.next(); err != nil {
					return schema.NoOrder, err
				}
			}
		}
		if len(ord.Group) == 0 {
			return schema.NoOrder, errf(kindTok.Pos, "increasing_in_group needs group columns")
		}
	default:
		return schema.NoOrder, errf(kindTok.Pos, "unknown ordering property %q", kindTok.Text)
	}
	_, err = p.expect(TokRParen)
	return ord, err
}

func (p *Parser) parseQuery() (*Query, error) {
	q := &Query{Defs: make(map[string][]string), At: p.tok.Pos}
	if p.atKeyword("DEFINE") {
		if err := p.parseDefine(q); err != nil {
			return nil, err
		}
	}
	switch {
	case p.atKeyword("SELECT"):
		q.Kind = KindSelect
		if err := p.parseSelect(q); err != nil {
			return nil, err
		}
	case p.atKeyword("MERGE"):
		q.Kind = KindMerge
		if err := p.parseMerge(q); err != nil {
			return nil, err
		}
	default:
		return nil, errf(p.tok.Pos, "expected SELECT or MERGE, found %s", p.tok)
	}
	return q, nil
}

// parseDefine parses either the braced form
//
//	DEFINE { query_name tcpdest0; param port uint; }
//
// or the paper's inline form "DEFINE query name tcpdest0;" where the entry
// runs to the semicolon.
func (p *Parser) parseDefine(q *Query) error {
	if err := p.next(); err != nil { // DEFINE
		return err
	}
	if p.tok.Kind == TokLBrace {
		if err := p.next(); err != nil {
			return err
		}
		for p.tok.Kind != TokRBrace {
			if err := p.parseDefineEntry(q); err != nil {
				return err
			}
		}
		return p.next()
	}
	// Inline form: single entry ending at ';'. The paper writes
	// "DEFINE query name tcpdest0;" — treat "query name" as the key
	// "query_name" for compatibility.
	var words []string
	for p.tok.Kind == TokIdent || p.tok.Kind == TokKeyword || p.tok.Kind == TokInt {
		words = append(words, p.tok.Text)
		if err := p.next(); err != nil {
			return err
		}
	}
	if _, err := p.expect(TokSemi); err != nil {
		return err
	}
	if len(words) >= 3 && strings.EqualFold(words[0], "query") && strings.EqualFold(words[1], "name") {
		q.Defs["query_name"] = words[2:]
		return nil
	}
	if len(words) < 2 {
		return errf(q.At, "DEFINE entry needs a key and a value")
	}
	q.Defs[strings.ToLower(words[0])] = words[1:]
	return nil
}

func (p *Parser) parseDefineEntry(q *Query) error {
	keyTok := p.tok
	if keyTok.Kind != TokIdent && keyTok.Kind != TokKeyword {
		return errf(keyTok.Pos, "expected DEFINE key, found %s", keyTok)
	}
	if err := p.next(); err != nil {
		return err
	}
	var words []string
	for p.tok.Kind != TokSemi {
		switch p.tok.Kind {
		case TokIdent, TokKeyword, TokInt, TokFloat, TokString, TokIP:
			words = append(words, p.tok.Text)
		case TokEOF:
			return errf(p.tok.Pos, "unterminated DEFINE entry")
		default:
			return errf(p.tok.Pos, "unexpected %s in DEFINE entry", p.tok)
		}
		if err := p.next(); err != nil {
			return err
		}
	}
	if err := p.next(); err != nil { // ';'
		return err
	}
	if len(words) == 0 {
		return errf(keyTok.Pos, "DEFINE entry %q has no value", keyTok.Text)
	}
	key := strings.ToLower(keyTok.Text)
	if key == "param" {
		if len(words) != 2 {
			return errf(keyTok.Pos, "param entry must be: param <name> <type>")
		}
		if _, ok := schema.ParseType(words[1]); !ok {
			return errf(keyTok.Pos, "unknown parameter type %q", words[1])
		}
		q.addParam(words)
		return nil
	}
	if _, dup := q.Defs[key]; dup {
		return errf(keyTok.Pos, "duplicate DEFINE key %q", key)
	}
	q.Defs[key] = words
	return nil
}

func (p *Parser) parseSelect(q *Query) error {
	if err := p.next(); err != nil { // SELECT
		return err
	}
	for {
		item, err := p.parseSelectItem()
		if err != nil {
			return err
		}
		q.Select = append(q.Select, item)
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	if err := p.parseSources(q); err != nil {
		return err
	}
	if p.atKeyword("WHERE") {
		if err := p.next(); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Where = e
	}
	if p.atKeyword("GROUP") {
		if err := p.next(); err != nil {
			return err
		}
		if err := p.expectKeyword("BY"); err != nil {
			return err
		}
		for {
			item, err := p.parseSelectItem()
			if err != nil {
				return err
			}
			q.GroupBy = append(q.GroupBy, item)
			if p.tok.Kind != TokComma {
				break
			}
			if err := p.next(); err != nil {
				return err
			}
		}
	}
	if p.atKeyword("HAVING") {
		if err := p.next(); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Having = e
	}
	return nil
}

func (p *Parser) parseMerge(q *Query) error {
	if err := p.next(); err != nil { // MERGE
		return err
	}
	for {
		e, err := p.parsePrimary()
		if err != nil {
			return err
		}
		col, ok := e.(*ColRef)
		if !ok {
			return errf(e.Pos(), "MERGE expects qualified column references (source.column)")
		}
		q.MergeCols = append(q.MergeCols, col)
		if p.tok.Kind != TokColon {
			break
		}
		if err := p.next(); err != nil {
			return err
		}
	}
	if err := p.expectKeyword("FROM"); err != nil {
		return err
	}
	if err := p.parseSources(q); err != nil {
		return err
	}
	// Optional WHERE: a selection over the merged stream. The compiler
	// distributes it into the branches (σp(A ∪ B) = σp(A) ∪ σp(B)), so
	// the conjuncts must be unqualified — they apply to every input.
	if p.atKeyword("WHERE") {
		if err := p.next(); err != nil {
			return err
		}
		e, err := p.parseExpr()
		if err != nil {
			return err
		}
		q.Where = e
	}
	return nil
}

func (p *Parser) parseSources(q *Query) error {
	for {
		ref, err := p.parseTableRef()
		if err != nil {
			return err
		}
		q.Sources = append(q.Sources, ref)
		if p.tok.Kind != TokComma {
			return nil
		}
		if err := p.next(); err != nil {
			return err
		}
	}
}

func (p *Parser) parseTableRef() (TableRef, error) {
	at := p.tok.Pos
	first, err := p.expect(TokIdent)
	if err != nil {
		return TableRef{}, err
	}
	ref := TableRef{Name: first.Text, At: at}
	if p.tok.Kind == TokDot {
		if err := p.next(); err != nil {
			return TableRef{}, err
		}
		second, err := p.expect(TokIdent)
		if err != nil {
			return TableRef{}, err
		}
		ref.Interface, ref.Name = first.Text, second.Text
	}
	// Optional alias: a bare identifier (not a clause keyword).
	if p.tok.Kind == TokIdent {
		ref.Alias = p.tok.Text
		if err := p.next(); err != nil {
			return TableRef{}, err
		}
	}
	return ref, nil
}

func (p *Parser) parseSelectItem() (SelectItem, error) {
	e, err := p.parseExpr()
	if err != nil {
		return SelectItem{}, err
	}
	item := SelectItem{Expr: e}
	if p.atKeyword("AS") {
		if err := p.next(); err != nil {
			return SelectItem{}, err
		}
		alias, err := p.expect(TokIdent)
		if err != nil {
			return SelectItem{}, err
		}
		item.Alias = alias.Text
	}
	return item, nil
}

// Expression parsing: precedence climbing.

func (p *Parser) parseExpr() (Expr, error) { return p.parseOr() }

func (p *Parser) parseOr() (Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("OR") {
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpOr, L: l, R: r, At: at}
	}
	return l, nil
}

func (p *Parser) parseAnd() (Expr, error) {
	l, err := p.parseNot()
	if err != nil {
		return nil, err
	}
	for p.atKeyword("AND") {
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: OpAnd, L: l, R: r, At: at}
	}
	return l, nil
}

func (p *Parser) parseNot() (Expr, error) {
	if p.atKeyword("NOT") {
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseNot()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNot, X: x, At: at}, nil
	}
	return p.parseComparison()
}

var cmpOps = map[TokKind]Op{
	TokEq: OpEq, TokNe: OpNe, TokLt: OpLt, TokLe: OpLe, TokGt: OpGt, TokGe: OpGe,
}

func (p *Parser) parseComparison() (Expr, error) {
	l, err := p.parseAdditive()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.tok.Kind]; ok {
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseAdditive()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: op, L: l, R: r, At: at}, nil
	}
	return l, nil
}

var addOps = map[TokKind]Op{
	TokPlus: OpAdd, TokMinus: OpSub, TokPipe: OpBitOr, TokCaret: OpBitXor,
}

func (p *Parser) parseAdditive() (Expr, error) {
	l, err := p.parseMultiplicative()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := addOps[p.tok.Kind]
		if !ok {
			return l, nil
		}
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseMultiplicative()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, At: at}
	}
}

var mulOps = map[TokKind]Op{
	TokStar: OpMul, TokSlash: OpDiv, TokPercent: OpMod,
	TokAmp: OpBitAnd, TokShl: OpShl, TokShr: OpShr,
}

func (p *Parser) parseMultiplicative() (Expr, error) {
	l, err := p.parseUnary()
	if err != nil {
		return nil, err
	}
	for {
		op, ok := mulOps[p.tok.Kind]
		if !ok {
			return l, nil
		}
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		r, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r, At: at}
	}
}

func (p *Parser) parseUnary() (Expr, error) {
	switch p.tok.Kind {
	case TokMinus:
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpNeg, X: x, At: at}, nil
	case TokTilde:
		at := p.tok.Pos
		if err := p.next(); err != nil {
			return nil, err
		}
		x, err := p.parseUnary()
		if err != nil {
			return nil, err
		}
		return &UnaryExpr{Op: OpBitNot, X: x, At: at}, nil
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() (Expr, error) {
	tok := p.tok
	switch tok.Kind {
	case TokInt:
		if err := p.next(); err != nil {
			return nil, err
		}
		u, err := parseUint(tok)
		if err != nil {
			return nil, err
		}
		return &Const{Val: schema.MakeUint(u), At: tok.Pos}, nil
	case TokFloat:
		if err := p.next(); err != nil {
			return nil, err
		}
		f, err := strconv.ParseFloat(tok.Text, 64)
		if err != nil {
			return nil, errf(tok.Pos, "bad float literal %q", tok.Text)
		}
		return &Const{Val: schema.MakeFloat(f), At: tok.Pos}, nil
	case TokString:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &Const{Val: schema.MakeStr(tok.Text), At: tok.Pos}, nil
	case TokIP:
		if err := p.next(); err != nil {
			return nil, err
		}
		a, err := schema.ParseIP(tok.Text)
		if err != nil {
			return nil, errf(tok.Pos, "bad IP literal %q", tok.Text)
		}
		return &Const{Val: schema.MakeIP(a), At: tok.Pos}, nil
	case TokParam:
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ParamRef{Name: tok.Text, At: tok.Pos}, nil
	case TokKeyword:
		switch tok.Text {
		case "TRUE":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &Const{Val: schema.MakeBool(true), At: tok.Pos}, nil
		case "FALSE":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &Const{Val: schema.MakeBool(false), At: tok.Pos}, nil
		case "NULL":
			if err := p.next(); err != nil {
				return nil, err
			}
			return &Const{Val: schema.Null, At: tok.Pos}, nil
		}
		return nil, errf(tok.Pos, "unexpected %s in expression", tok)
	case TokLParen:
		if err := p.next(); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(TokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case TokIdent:
		// Could be: function call, qualified column, or bare column.
		nxt, err := p.peek()
		if err != nil {
			return nil, err
		}
		switch nxt.Kind {
		case TokLParen:
			return p.parseFuncCall(tok)
		case TokDot:
			if err := p.next(); err != nil { // ident
				return nil, err
			}
			if err := p.next(); err != nil { // '.'
				return nil, err
			}
			col, err := p.expect(TokIdent)
			if err != nil {
				return nil, err
			}
			return &ColRef{Table: tok.Text, Name: col.Text, At: tok.Pos}, nil
		}
		if err := p.next(); err != nil {
			return nil, err
		}
		return &ColRef{Name: tok.Text, At: tok.Pos}, nil
	}
	return nil, errf(tok.Pos, "unexpected %s in expression", tok)
}

func (p *Parser) parseFuncCall(name Token) (Expr, error) {
	if err := p.next(); err != nil { // ident
		return nil, err
	}
	if err := p.next(); err != nil { // '('
		return nil, err
	}
	call := &FuncCall{Name: name.Text, At: name.Pos}
	if p.tok.Kind == TokRParen {
		return call, p.next()
	}
	for {
		if p.tok.Kind == TokStar {
			call.Args = append(call.Args, &Star{At: p.tok.Pos})
			if err := p.next(); err != nil {
				return nil, err
			}
		} else {
			a, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			call.Args = append(call.Args, a)
		}
		if p.tok.Kind != TokComma {
			break
		}
		if err := p.next(); err != nil {
			return nil, err
		}
	}
	if _, err := p.expect(TokRParen); err != nil {
		return nil, err
	}
	return call, nil
}

func parseUint(t Token) (uint64, error) {
	u, err := strconv.ParseUint(t.Text, 0, 64)
	if err != nil {
		return 0, errf(t.Pos, "bad integer literal %q", t.Text)
	}
	return u, nil
}
