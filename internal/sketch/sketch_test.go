package sketch

import (
	"encoding/binary"
	"math"
	"testing"
)

// rng is a splitmix64 generator: deterministic test data without seeding
// global state.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

func key(i uint64) []byte {
	var b [8]byte
	binary.BigEndian.PutUint64(b[:], i)
	return b[:]
}

// zipfish returns a key index with a heavy-tailed distribution: index 0 is
// the most frequent, frequencies fall off roughly as 1/rank.
func zipfish(r *rng, n int) uint64 {
	u := float64(r.next()%1_000_000) / 1_000_000
	idx := uint64(math.Pow(float64(n), u)) - 1
	if idx >= uint64(n) {
		idx = uint64(n) - 1
	}
	return idx
}

func TestCountMinAccuracy(t *testing.T) {
	cm, err := NewCountMin(0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	r := &rng{s: 1}
	truth := map[uint64]uint64{}
	const adds = 50_000
	for i := 0; i < adds; i++ {
		k := zipfish(r, 1000)
		truth[k]++
		cm.Add(key(k), 1)
	}
	if cm.Total() != adds {
		t.Fatalf("total = %d, want %d", cm.Total(), adds)
	}
	bound := uint64(cm.Eps()*float64(adds)) + 1
	bad := 0
	for k, want := range truth {
		got := cm.Estimate(key(k))
		if got < want {
			t.Fatalf("count-min undercounted key %d: %d < %d", k, got, want)
		}
		if got-want > bound {
			bad++
		}
	}
	// The eps*N bound holds per query with probability 1-delta; allow a
	// generous multiple of delta for the fixed seed.
	if maxBad := int(3*cm.Delta()*float64(len(truth))) + 1; bad > maxBad {
		t.Fatalf("%d/%d keys exceeded the eps*N bound (max %d)", bad, len(truth), maxBad)
	}
}

func TestCountMinMergePartitionInvariance(t *testing.T) {
	// Partitioning the stream across any number of sketches and merging
	// must reproduce the single-pass sketch exactly.
	for _, parts := range []int{1, 2, 4, 8} {
		whole, _ := NewCountMin(0.02, 0.05)
		shards := make([]*CountMin, parts)
		for i := range shards {
			shards[i], _ = NewCountMin(0.02, 0.05)
		}
		r := &rng{s: 7}
		for i := 0; i < 20_000; i++ {
			k := zipfish(r, 500)
			whole.Add(key(k), 1)
			shards[i%parts].Add(key(k), 1)
		}
		merged := shards[0]
		for _, s := range shards[1:] {
			if err := merged.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		for k := uint64(0); k < 500; k++ {
			if merged.Estimate(key(k)) != whole.Estimate(key(k)) {
				t.Fatalf("parts=%d: estimate differs for key %d", parts, k)
			}
		}
		if merged.Total() != whole.Total() {
			t.Fatalf("parts=%d: totals differ", parts)
		}
	}
}

func TestCountMinMergeDimensionMismatch(t *testing.T) {
	a, _ := NewCountMin(0.01, 0.01)
	b, _ := NewCountMin(0.1, 0.01)
	if err := a.Merge(b); err == nil {
		t.Fatal("merge of mismatched dimensions should fail")
	}
}

func TestCountMinSerializeRoundTrip(t *testing.T) {
	cm, _ := NewCountMin(0.05, 0.05)
	r := &rng{s: 3}
	for i := 0; i < 1000; i++ {
		cm.Add(key(r.next()%100), 1)
	}
	buf := cm.AppendBinary(nil)
	got, n, err := ParseCountMin(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	for k := uint64(0); k < 100; k++ {
		if got.Estimate(key(k)) != cm.Estimate(key(k)) {
			t.Fatalf("estimate differs after round trip for key %d", k)
		}
	}
	if _, _, err := ParseCountMin(buf[:10]); err == nil {
		t.Fatal("truncated parse should fail")
	}
}

func TestHLLAccuracy(t *testing.T) {
	for _, n := range []int{100, 10_000, 200_000} {
		h, err := NewHLL(0.02)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			h.Add(key(uint64(i)))
			h.Add(key(uint64(i))) // duplicates must not count
		}
		got := float64(h.Estimate())
		relErr := math.Abs(got-float64(n)) / float64(n)
		if relErr > 4*h.StdErr() {
			t.Fatalf("n=%d: estimate %v off by %.3f (stderr %.3f)", n, got, relErr, h.StdErr())
		}
	}
}

func TestHLLMergeInvariance(t *testing.T) {
	for _, parts := range []int{2, 4, 8} {
		whole, _ := NewHLL(0.03)
		shards := make([]*HLL, parts)
		for i := range shards {
			shards[i], _ = NewHLL(0.03)
		}
		for i := 0; i < 50_000; i++ {
			whole.Add(key(uint64(i)))
			shards[i%parts].Add(key(uint64(i)))
		}
		// Merge in two different orders; both must equal the whole.
		fwd := clone(t, shards[0])
		for _, s := range shards[1:] {
			mustMerge(t, fwd, s)
		}
		rev := clone(t, shards[parts-1])
		for i := parts - 2; i >= 0; i-- {
			mustMerge(t, rev, shards[i])
		}
		if fwd.Estimate() != whole.Estimate() || rev.Estimate() != whole.Estimate() {
			t.Fatalf("parts=%d: merged estimates %d/%d != whole %d",
				parts, fwd.Estimate(), rev.Estimate(), whole.Estimate())
		}
	}
}

func clone(t *testing.T, h *HLL) *HLL {
	t.Helper()
	c, _, err := ParseHLL(h.AppendBinary(nil))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func mustMerge(t *testing.T, dst, src *HLL) {
	t.Helper()
	if err := dst.Merge(src); err != nil {
		t.Fatal(err)
	}
}

func TestHLLSerializeRoundTrip(t *testing.T) {
	h, _ := NewHLL(0.05)
	for i := 0; i < 5000; i++ {
		h.Add(key(uint64(i)))
	}
	buf := h.AppendBinary(nil)
	got, n, err := ParseHLL(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	if got.Estimate() != h.Estimate() {
		t.Fatal("estimate differs after round trip")
	}
	if _, _, err := ParseHLL(nil); err == nil {
		t.Fatal("empty parse should fail")
	}
}

func TestQuantileAccuracy(t *testing.T) {
	const alpha = 0.01
	s, err := NewQuantile(alpha)
	if err != nil {
		t.Fatal(err)
	}
	const n = 100_000
	r := &rng{s: 11}
	vals := make([]float64, 0, n)
	for i := 0; i < n; i++ {
		v := float64(r.next()%1_000_000) / 10 // [0, 100k) with duplicates
		vals = append(vals, v)
		s.Add(v)
	}
	sortFloats(vals)
	for _, q := range []float64{0.01, 0.25, 0.5, 0.9, 0.99} {
		got := s.Query(q)
		want := exactQuantile(vals, q)
		if want == 0 {
			continue
		}
		relErr := math.Abs(got-want) / want
		// The value at the matched rank is within alpha; rank rounding can
		// land one bucket over, so allow 3*alpha.
		if relErr > 3*alpha {
			t.Fatalf("q=%v: got %v want %v (rel err %.4f)", q, got, want, relErr)
		}
	}
}

func exactQuantile(sorted []float64, q float64) float64 {
	idx := int(math.Ceil(q*float64(len(sorted)))) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return sorted[idx]
}

func sortFloats(v []float64) {
	// Insertion into a sorted copy would be O(n^2); use a simple heapsort
	// via sort.Float64s without importing sort twice — just inline it.
	quicksort(v, 0, len(v)-1)
}

func quicksort(v []float64, lo, hi int) {
	for lo < hi {
		p := v[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for v[i] < p {
				i++
			}
			for v[j] > p {
				j--
			}
			if i <= j {
				v[i], v[j] = v[j], v[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quicksort(v, lo, j)
			lo = i
		} else {
			quicksort(v, i, hi)
			hi = j
		}
	}
}

func TestQuantileMergeInvariance(t *testing.T) {
	for _, parts := range []int{2, 4, 8} {
		whole, _ := NewQuantile(0.02)
		shards := make([]*Quantile, parts)
		for i := range shards {
			shards[i], _ = NewQuantile(0.02)
		}
		r := &rng{s: 13}
		for i := 0; i < 30_000; i++ {
			v := float64(int64(r.next()%2_000_000)) - 1_000_000 // negatives too
			whole.Add(v)
			shards[i%parts].Add(v)
		}
		merged := shards[0]
		for _, s := range shards[1:] {
			if err := merged.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		for _, q := range []float64{0.1, 0.5, 0.9} {
			if merged.Query(q) != whole.Query(q) {
				t.Fatalf("parts=%d q=%v: merged %v != whole %v",
					parts, q, merged.Query(q), whole.Query(q))
			}
		}
	}
}

func TestQuantileSerializeRoundTrip(t *testing.T) {
	s, _ := NewQuantile(0.05)
	r := &rng{s: 17}
	for i := 0; i < 5000; i++ {
		s.Add(float64(r.next() % 10_000))
	}
	s.Add(0)
	s.Add(-42.5)
	buf := s.AppendBinary(nil)
	got, n, err := ParseQuantile(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got.Query(q) != s.Query(q) {
			t.Fatalf("q=%v differs after round trip", q)
		}
	}
	if got.Count() != s.Count() {
		t.Fatal("count differs after round trip")
	}
}

func TestQuantileEmptyAndBounds(t *testing.T) {
	s, _ := NewQuantile(0.01)
	if !math.IsNaN(s.Query(0.5)) {
		t.Fatal("empty sketch should return NaN")
	}
	if _, err := NewQuantile(0); err == nil {
		t.Fatal("alpha=0 should fail")
	}
	if _, err := NewQuantile(1); err == nil {
		t.Fatal("alpha=1 should fail")
	}
}

func TestTopKExactUnderCapacity(t *testing.T) {
	tk, err := NewTopK(3, 0.01, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	// 10 distinct keys, well under the candidate cap: membership and order
	// must be exact.
	for i := 0; i < 10; i++ {
		for j := 0; j <= i; j++ {
			tk.Add(key(uint64(i)), 1)
		}
	}
	top := tk.Top()
	if len(top) != 3 {
		t.Fatalf("top has %d entries, want 3", len(top))
	}
	for i, want := range []uint64{9, 8, 7} {
		if binary.BigEndian.Uint64(top[i].Key) != want {
			t.Fatalf("top[%d] = key %d, want %d", i, binary.BigEndian.Uint64(top[i].Key), want)
		}
		if top[i].Count != want+1 {
			t.Fatalf("top[%d] count = %d, want %d", i, top[i].Count, want+1)
		}
	}
}

func TestTopKMergeInvarianceUnderCapacity(t *testing.T) {
	// When distinct keys fit the candidate set, sharding must not change
	// the report at all.
	for _, parts := range []int{2, 4, 8} {
		whole, _ := NewTopK(5, 0.02, 0.02)
		shards := make([]*TopK, parts)
		for i := range shards {
			shards[i], _ = NewTopK(5, 0.02, 0.02)
		}
		r := &rng{s: 19}
		for i := 0; i < 20_000; i++ {
			k := zipfish(r, 50)
			whole.Add(key(k), 1)
			shards[i%parts].Add(key(k), 1)
		}
		merged := shards[0]
		for _, s := range shards[1:] {
			if err := merged.Merge(s); err != nil {
				t.Fatal(err)
			}
		}
		w, m := whole.Top(), merged.Top()
		if len(w) != len(m) {
			t.Fatalf("parts=%d: top sizes differ", parts)
		}
		for i := range w {
			if string(w[i].Key) != string(m[i].Key) || w[i].Count != m[i].Count {
				t.Fatalf("parts=%d: top[%d] differs: %v/%d vs %v/%d",
					parts, i, w[i].Key, w[i].Count, m[i].Key, m[i].Count)
			}
		}
	}
}

func TestTopKHeavyTailRecall(t *testing.T) {
	tk, _ := NewTopK(10, 0.005, 0.01)
	r := &rng{s: 23}
	truth := map[uint64]uint64{}
	for i := 0; i < 200_000; i++ {
		k := zipfish(r, 10_000)
		truth[k]++
		tk.Add(key(k), 1)
	}
	// The true top-10 of a zipf stream should be recalled even with 10k
	// distinct keys flowing past a bounded candidate set.
	reported := map[uint64]bool{}
	for _, e := range tk.Top() {
		reported[binary.BigEndian.Uint64(e.Key)] = true
	}
	hits := 0
	for k := uint64(0); k < 10; k++ {
		if reported[k] {
			hits++
		}
	}
	if hits < 8 {
		t.Fatalf("recalled only %d/10 true heavy hitters", hits)
	}
	for _, e := range tk.Top() {
		k := binary.BigEndian.Uint64(e.Key)
		if e.Count < truth[k] {
			t.Fatalf("key %d undercounted: %d < %d", k, e.Count, truth[k])
		}
	}
}

func TestTopKSerializeRoundTrip(t *testing.T) {
	tk, _ := NewTopK(4, 0.05, 0.05)
	r := &rng{s: 29}
	for i := 0; i < 5000; i++ {
		tk.Add(key(zipfish(r, 100)), 1)
	}
	buf := tk.AppendBinary(nil)
	got, n, err := ParseTopK(buf)
	if err != nil || n != len(buf) {
		t.Fatalf("parse: n=%d err=%v", n, err)
	}
	w, g := tk.Top(), got.Top()
	if len(w) != len(g) {
		t.Fatal("top sizes differ after round trip")
	}
	for i := range w {
		if string(w[i].Key) != string(g[i].Key) || w[i].Count != g[i].Count {
			t.Fatalf("top[%d] differs after round trip", i)
		}
	}
}

func TestWindowCMExpiry(t *testing.T) {
	w, err := NewWindowCM(1000, 4, 0.02, 0.02)
	if err != nil {
		t.Fatal(err)
	}
	k := key(42)
	for ts := uint64(0); ts < 1000; ts += 10 {
		w.Add(ts, k, 1)
	}
	if got := w.Estimate(1000, k); got < 100 {
		t.Fatalf("estimate %d should cover all 100 adds still in window", got)
	}
	// Far in the future everything has expired.
	if got := w.Estimate(10_000, k); got != 0 {
		t.Fatalf("estimate %d after expiry, want 0", got)
	}
	if w.Buckets() != 0 {
		t.Fatalf("%d buckets survive full expiry", w.Buckets())
	}
}

func TestWindowCMDecayBound(t *testing.T) {
	const window = 10_000
	w, _ := NewWindowCM(window, 4, 0.02, 0.02)
	k := key(7)
	var recent uint64
	for ts := uint64(0); ts < 5*window; ts += 5 {
		w.Add(ts, k, 1)
		if ts >= 4*window {
			recent++
		}
	}
	now := uint64(5*window - 5)
	got := w.Estimate(now, k)
	if got < recent {
		t.Fatalf("window estimate %d undercounts the %d in-window adds", got, recent)
	}
	// Overcount is bounded by the straddling bucket: with maxPerLevel=4
	// that is at most ~half the window's worth here. Assert a loose 2x.
	if got > 2*recent {
		t.Fatalf("window estimate %d more than doubles the %d in-window adds", got, recent)
	}
	// Memory stays bounded: maxPerLevel buckets per level, ~log2 levels.
	if w.Buckets() > 64 {
		t.Fatalf("%d live buckets, expected a bounded number", w.Buckets())
	}
}

func TestHash64Stability(t *testing.T) {
	// The hash feeds serialized, mergeable state; its values must never
	// change across releases or platforms.
	if got := Hash64([]byte("gigascope"), 0); got != Hash64([]byte("gigascope"), 0) {
		t.Fatal("hash not deterministic")
	}
	if Hash64([]byte("a"), 1) == Hash64([]byte("a"), 2) {
		t.Fatal("seed has no effect")
	}
	if Hash64([]byte("a"), 1) == Hash64([]byte("b"), 1) {
		t.Fatal("suspicious collision on distinct single bytes")
	}
}

func TestErrorParameterValidation(t *testing.T) {
	cases := []struct {
		name string
		err  error
	}{
		{"cm eps=0", errOf(func() error { _, err := NewCountMin(0, 0.1); return err })},
		{"cm delta=1", errOf(func() error { _, err := NewCountMin(0.1, 1); return err })},
		{"hll eps=-1", errOf(func() error { _, err := NewHLL(-1); return err })},
		{"topk k=0", errOf(func() error { _, err := NewTopK(0, 0.1, 0.1); return err })},
		{"window=0", errOf(func() error { _, err := NewWindowCM(0, 4, 0.1, 0.1); return err })},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Fatalf("%s: expected an error", c.name)
		}
	}
}

func errOf(f func() error) error { return f() }

func BenchmarkCountMinAdd(b *testing.B) {
	cm, _ := NewCountMin(0.01, 0.01)
	k := key(12345)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cm.Add(k, 1)
	}
}

func BenchmarkHLLAdd(b *testing.B) {
	h, _ := NewHLL(0.02)
	var buf [8]byte
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h.Add(buf[:])
	}
}

func BenchmarkQuantileAdd(b *testing.B) {
	s, _ := NewQuantile(0.01)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Add(float64(i % 100_000))
	}
}
