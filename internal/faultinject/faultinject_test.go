package faultinject

import (
	"testing"

	"gigascope/internal/pkt"
)

func makeStream(n int) []*pkt.Packet {
	ps := make([]*pkt.Packet, n)
	for i := range ps {
		p := pkt.BuildTCP(uint64(i+1)*1000, pkt.TCPSpec{
			SrcIP:   0x0a000001 + uint32(i%50),
			DstIP:   0x0a000100,
			SrcPort: uint16(1024 + i%1000),
			DstPort: 80,
			TTL:     64,
			Payload: []byte("payload"),
		})
		ps[i] = &p
	}
	return ps
}

// Same seed, same packet sequence: identical fault placement, per-kind
// counts, and faulted bytes.
func TestDeterministicFromSeed(t *testing.T) {
	// One shared input stream: packets carry a global ip_id counter, so two
	// builds differ byte-wise, but Apply never mutates its input.
	stream := makeStream(5000)
	run := func() ([]*pkt.Packet, Stats) {
		in := New(DefaultConfig(42))
		var out []*pkt.Packet
		for _, p := range stream {
			q, _, _ := in.Apply(p)
			out = append(out, q)
		}
		return out, in.Stats()
	}
	out1, st1 := run()
	out2, st2 := run()
	if st1 != st2 {
		t.Fatalf("stats differ across identical runs: %+v vs %+v", st1, st2)
	}
	if st1.Total() == 0 {
		t.Fatal("default config applied no faults over 5000 packets")
	}
	if st1.Clean+st1.Total() != 5000 {
		t.Fatalf("counters don't partition the stream: clean=%d faulted=%d", st1.Clean, st1.Total())
	}
	for i := range out1 {
		if out1[i].TS != out2[i].TS || len(out1[i].Data) != len(out2[i].Data) {
			t.Fatalf("packet %d differs across identical runs", i)
		}
		for j := range out1[i].Data {
			if out1[i].Data[j] != out2[i].Data[j] {
				t.Fatalf("packet %d byte %d differs across identical runs", i, j)
			}
		}
	}
}

// Faults must never mutate the caller's packet: a frame shared across two
// interfaces faults on the bound one only.
func TestFaultsCloneNotMutate(t *testing.T) {
	in := New(Config{Seed: 7, Truncate: 0.2, BadIHL: 0.2, BadTotalLen: 0.2, Options: 0.2, ClockSkew: 0.1, ClockRegress: 0.1})
	for i, p := range makeStream(500) {
		orig := *p
		origData := append([]byte(nil), p.Data...)
		q, kind, faulted := in.Apply(p)
		if p.TS != orig.TS || p.WireLen != orig.WireLen || len(p.Data) != len(origData) {
			t.Fatalf("packet %d: input mutated by %v fault", i, kind)
		}
		for j := range origData {
			if p.Data[j] != origData[j] {
				t.Fatalf("packet %d: input bytes mutated by %v fault", i, kind)
			}
		}
		if faulted && q == p {
			t.Fatalf("packet %d: faulted output aliases the input", i)
		}
	}
	if in.Stats().Total() == 0 {
		t.Fatal("aggressive config applied no faults")
	}
}

// Option-bearing output must stay a valid IPv4 frame whose transport
// fields read correctly through IHL-honoring readers — and incorrectly
// through a fixed-offset read, which is the point of the fault.
func TestInsertOptionsSelfConsistent(t *testing.T) {
	in := New(Config{Seed: 3, Options: 1.0})
	found := false
	for _, p := range makeStream(50) {
		q, kind, faulted := in.Apply(p)
		if !faulted {
			continue
		}
		if kind != KindOptions {
			t.Fatalf("expected ip-options fault, got %v", kind)
		}
		found = true
		if err := pkt.Verify(q); err != nil {
			t.Fatalf("option-bearing frame fails verification: %v", err)
		}
		ihl, ok := q.IPHeaderLen()
		if !ok || ihl <= 20 {
			t.Fatalf("options not reflected in IHL: ihl=%d ok=%v", ihl, ok)
		}
		spec, _ := pkt.LookupInterp("get_dest_port")
		v, ok := spec.Extract(q)
		if !ok || v.U != 80 {
			t.Fatalf("IHL-honoring extractor misread dest port: got %d ok=%v", v.U, ok)
		}
		raw, ok := spec.Raw.Read(q)
		if !ok || raw != 80 {
			t.Fatalf("L4-flagged raw ref misread dest port on option frame: got %d ok=%v", raw, ok)
		}
	}
	if !found {
		t.Fatal("no option fault applied at rate 1.0")
	}
}

// Corrupt headers must read as absent, not as garbage values.
func TestBadIHLReadsAsAbsent(t *testing.T) {
	in := New(Config{Seed: 9, BadIHL: 1.0})
	p := makeStream(1)[0]
	q, kind, faulted := in.Apply(p)
	if !faulted || kind != KindBadIHL {
		t.Fatalf("expected bad-ihl fault, got faulted=%v kind=%v", faulted, kind)
	}
	if _, ok := q.IPHeaderLen(); ok {
		t.Fatal("IHL below minimum validated as readable")
	}
	spec, _ := pkt.LookupInterp("get_src_port")
	if _, ok := spec.Extract(q); ok {
		t.Fatal("transport extractor succeeded on a corrupt IHL")
	}
	if _, ok := spec.Raw.Read(q); ok {
		t.Fatal("raw L4 ref succeeded on a corrupt IHL")
	}
}

func TestClockFaults(t *testing.T) {
	const jump = 250_000
	skew := New(Config{Seed: 1, ClockSkew: 1.0, ClockJumpUsec: jump})
	p := makeStream(1)[0]
	q, _, faulted := skew.Apply(p)
	if !faulted || q.TS != p.TS+jump {
		t.Fatalf("skew: got TS %d, want %d", q.TS, p.TS+jump)
	}
	reg := New(Config{Seed: 1, ClockRegress: 1.0, ClockJumpUsec: jump})
	q, _, faulted = reg.Apply(p)
	if !faulted || q.TS != 0 { // p.TS 1000 < jump: clamps at zero
		t.Fatalf("regress: got TS %d, want 0", q.TS)
	}
}

func TestApplyBatchSharesNoState(t *testing.T) {
	ps := makeStream(2000)
	in := New(DefaultConfig(11))
	out := in.ApplyBatch(ps)
	if len(out) != len(ps) {
		t.Fatalf("batch length changed: %d -> %d", len(ps), len(out))
	}
	st := in.Stats()
	if st.Total() == 0 {
		t.Fatal("no faults across 2000 packets at default rates")
	}
	changed := 0
	for i := range out {
		if out[i] != ps[i] {
			changed++
		}
	}
	if uint64(changed) != st.Total() {
		t.Fatalf("replaced %d packets but counted %d faults", changed, st.Total())
	}

	// A clean batch comes back as the identical slice (no copy).
	quiet := New(Config{Seed: 5})
	clean := makeStream(10)
	if got := quiet.ApplyBatch(clean); &got[0] != &clean[0] {
		t.Fatal("fault-free batch was copied")
	}
}

func TestSaturateWindow(t *testing.T) {
	ps := makeStream(100)
	SaturateWindow(ps, 777)
	for i, p := range ps {
		if p.TS != 777 {
			t.Fatalf("packet %d TS = %d, want 777", i, p.TS)
		}
	}
}
