package gigascope

// Benchmark harness: one benchmark per experiment in the paper's
// evaluation (see DESIGN.md §3 for the experiment index and EXPERIMENTS.md
// for recorded paper-vs-measured results). The per-iteration work is the
// experiment's hot path (so ns/op is meaningful); the experiment's
// headline numbers are attached as custom benchmark metrics.
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"sync"
	"testing"

	"gigascope/internal/capture"
	"gigascope/internal/exec"
	"gigascope/internal/experiments"
	"gigascope/internal/netsim"
	"gigascope/internal/nic"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// prePackets synthesizes a deterministic packet workload once.
var prePackets = sync.OnceValue(func() []pkt.Packet {
	gen, err := netsim.New(netsim.Config{
		Seed: 42,
		Classes: []netsim.Class{
			{Name: "web", RateMbps: 60, PktBytes: 1000, DstPort: 80,
				Proto: pkt.ProtoTCP, Payload: netsim.PayloadHTTP, HTTPFraction: 0.6, Flows: 512},
			{Name: "bg", RateMbps: 140, PktBytes: 1000, DstPort: 9000,
				Proto: pkt.ProtoTCP, Flows: 512},
		},
	})
	if err != nil {
		panic(err)
	}
	pkts := make([]pkt.Packet, 200_000)
	for i := range pkts {
		pkts[i], _ = gen.Next()
	}
	return pkts
})

// e1Rates computes the §4 table once for metric reporting.
var e1Rates = sync.OnceValues(func() ([]experiments.E1Row, error) {
	return experiments.E1(2.0)
})

// BenchmarkE1_SustainableRate regenerates the §4 experiment. The metrics
// report the maximum sustainable rate per configuration (Mbit/s at 2%
// loss); the timed loop is the host-LFTA capture path per packet.
func BenchmarkE1_SustainableRate(b *testing.B) {
	rows, err := e1Rates()
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := experiments.CompiledHTTPPipeline()
	if err != nil {
		b.Fatal(err)
	}
	st, err := capture.NewStack(capture.ModeHostLFTA, capture.DefaultParams(), pipe, 1)
	if err != nil {
		b.Fatal(err)
	}
	pkts := prePackets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		p.TS = uint64(i) * 20 // 50k pps
		st.Arrive(&p)
	}
	b.ReportMetric(rows[0].MaxRateMbps, "Mbps-disk")
	b.ReportMetric(rows[1].MaxRateMbps, "Mbps-pcap")
	b.ReportMetric(rows[2].MaxRateMbps, "Mbps-hostLFTA")
	b.ReportMetric(rows[3].MaxRateMbps, "Mbps-nicLFTA")
}

// BenchmarkE2_LFTAReduction measures the LFTA direct-mapped aggregation
// (paper §3) per packet; the metric reports the early data reduction
// factor achieved with a small 256-slot table.
func BenchmarkE2_LFTAReduction(b *testing.B) {
	rows, err := experiments.E2([]int{256}, []int{1000}, 50_000)
	if err != nil {
		b.Fatal(err)
	}
	sys, err := New(Config{LFTATableSize: 256})
	if err != nil {
		b.Fatal(err)
	}
	cq := sys.MustAddQuery(`
		DEFINE { query_name bench_e2; }
		SELECT tb, srcIP, srcPort, count(*), sum(total_length)
		FROM TCP GROUP BY time/60 as tb, srcIP, srcPort`, nil)
	inst, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		b.Fatal(err)
	}
	drop := func(exec.Message) {}
	pkts := prePackets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.PushPacket(&pkts[i%len(pkts)], drop)
	}
	b.ReportMetric(rows[0].Reduction, "reduction-x")
}

// BenchmarkE3_MergeHeartbeat measures the merge operator under a silent
// second input with periodic heartbeats (paper §3 unblocking); the
// metrics report buffer high-water marks per policy.
func BenchmarkE3_MergeHeartbeat(b *testing.B) {
	rows, err := experiments.E3(20_000, 100_000)
	if err != nil {
		b.Fatal(err)
	}
	out := &schema.Schema{Name: "m", Kind: schema.KindStream, Cols: []schema.Column{
		{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
	}}
	m, err := exec.NewMerge([]int{0, 0}, out)
	if err != nil {
		b.Fatal(err)
	}
	emit := func(exec.Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ts := uint64(i) * 1000
		m.Push(0, exec.TupleMsg(schema.Tuple{schema.MakeUint(ts)}), emit)
		if i%100 == 99 {
			m.Push(1, exec.HeartbeatMsg(schema.Tuple{schema.MakeUint(ts)}), emit)
		}
	}
	b.ReportMetric(float64(rows[0].MaxBuffered), "buf-noHB")
	b.ReportMetric(float64(rows[1].MaxBuffered), "buf-periodic")
	b.ReportMetric(float64(rows[2].MaxBuffered), "buf-onDemand")
	b.ReportMetric(float64(rows[3].Reordered), "reordered-bounded")
}

// BenchmarkE4_SplitVsMonolithic times the full LFTA→HFTA aggregation
// chain per packet under both plans (paper §3 splitting ablation); the
// metric reports the boundary-traffic reduction from splitting.
func BenchmarkE4_SplitVsMonolithic(b *testing.B) {
	rows, err := experiments.E4(50_000)
	if err != nil {
		b.Fatal(err)
	}
	reduction := float64(rows[1].BoundaryTuples) / float64(rows[0].BoundaryTuples)
	for _, cfg := range []struct {
		name    string
		disable bool
	}{{"split", false}, {"monolithic", true}} {
		b.Run(cfg.name, func(b *testing.B) {
			sys, err := New(Config{DisableSplit: cfg.disable})
			if err != nil {
				b.Fatal(err)
			}
			cq := sys.MustAddQuery(`
				DEFINE { query_name bench_e4; }
				SELECT tb, destIP, count(*), sum(total_length)
				FROM TCP GROUP BY time/60 as tb, destIP`, nil)
			lfta, err := cq.Nodes[0].Instantiate(nil)
			if err != nil {
				b.Fatal(err)
			}
			hfta, err := cq.Nodes[1].Instantiate(nil)
			if err != nil {
				b.Fatal(err)
			}
			sink := func(exec.Message) {}
			mid := func(m exec.Message) { hfta.Op.Push(0, m, sink) }
			pkts := prePackets()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				lfta.PushPacket(&pkts[i%len(pkts)], mid)
			}
			b.ReportMetric(reduction, "boundary-reduction-x")
		})
	}
}

// BenchmarkE5_DeploymentMix runs the §5 seven-query deployment mix
// through the full RTS and reports wall-clock packets/second (paper: 1.2M
// pps on a 2003 dual 2.4 GHz server).
func BenchmarkE5_DeploymentMix(b *testing.B) {
	row, err := experiments.E5(200_000)
	if err != nil {
		b.Fatal(err)
	}
	// Timed loop: the per-packet capture path of the busiest LFTA.
	sys, err := New()
	if err != nil {
		b.Fatal(err)
	}
	cq := sys.MustAddQuery(experiments.E5Queries[0], nil)
	inst, err := cq.Nodes[0].Instantiate(nil)
	if err != nil {
		b.Fatal(err)
	}
	drop := func(exec.Message) {}
	pkts := prePackets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		inst.PushPacket(&pkts[i%len(pkts)], drop)
	}
	b.ReportMetric(row.PktsPerSecond, "rts-pkts/s")
	b.ReportMetric(row.PaperPPS, "paper-pkts/s")
}

// BenchmarkE9_ShardScaling sweeps the RSS shard width over the E5 mix and
// reports wall-clock packets/second per width plus the 4-shard speedup.
// The timed loop is the steering cost itself (flow hash + partition),
// which is the serialized portion the sharded path adds to capture.
func BenchmarkE9_ShardScaling(b *testing.B) {
	rows, err := experiments.E9(400_000, []int{1, 2, 4})
	if err != nil {
		b.Fatal(err)
	}
	pkts := prePackets()
	window := make([]*pkt.Packet, 256)
	var shards [][]*pkt.Packet
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := range window {
			window[j] = &pkts[(i*len(window)+j)%len(pkts)]
		}
		shards = nic.Steer(window, 4, shards)
	}
	for _, r := range rows {
		b.ReportMetric(r.PktsPerSecond, fmt.Sprintf("pkts/s-%dshard", r.Shards))
	}
	b.ReportMetric(rows[len(rows)-1].Speedup, "speedup-4shard")
}

// BenchmarkE6_OrderedJoin times the streaming window join per tuple pair
// and reports the bounded buffer high-water mark (paper §2.1: ordering
// properties bound operator state).
func BenchmarkE6_OrderedJoin(b *testing.B) {
	joins, err := experiments.E6Join(30_000, []int64{2})
	if err != nil {
		b.Fatal(err)
	}
	agg, err := experiments.E6Agg(20_000)
	if err != nil {
		b.Fatal(err)
	}
	if !agg.Exact {
		b.Fatal("banded aggregation inexact")
	}
	ls := &schema.Schema{Name: "l", Kind: schema.KindStream, Cols: []schema.Column{
		{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
		{Name: "k", Type: schema.TUint},
	}}
	ordExpr := func(idx int) exec.Expr { return benchCol{idx} }
	j, err := exec.NewJoin(exec.JoinSpec{
		OrdL: ordExpr(0), OrdR: ordExpr(0),
		LowSlack: 2, HighSlack: 2,
		EqL: []exec.Expr{benchCol{1}}, EqR: []exec.Expr{benchCol{1}},
		Outs: []exec.Expr{benchCol{0}}, Out: ls,
		OutOrdL: 0, OutOrdR: -1,
	})
	if err != nil {
		b.Fatal(err)
	}
	emit := func(exec.Message) {}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := uint64(i / 2)
		row := schema.Tuple{schema.MakeUint(t), schema.MakeUint(uint64(i % 64))}
		j.Push(i%2, exec.TupleMsg(row), emit)
	}
	b.ReportMetric(float64(joins[0].PeakBuffer), "peak-buffer")
	b.ReportMetric(float64(agg.PeakGroups), "peak-groups")
}

// benchCol is a minimal column accessor for operator micro-benches.
type benchCol struct{ idx int }

func (c benchCol) Type() schema.Type { return schema.TUint }
func (c benchCol) Eval(row schema.Tuple, _ *exec.Ctx) (schema.Value, bool) {
	return row[c.idx], true
}

// BenchmarkE7_NICPushdown times the BPF filter + snap path per packet and
// reports the host byte reduction at 5% selectivity (paper §3 pushdown).
func BenchmarkE7_NICPushdown(b *testing.B) {
	rows, err := experiments.E7(50_000, []float64{0.05}, 54)
	if err != nil {
		b.Fatal(err)
	}
	dev := nic.NewDevice(nic.CapBPF)
	err = dev.Install(&nic.Program{
		Clauses: []nic.Clause{{
			nic.Cmp{Raw: pkt.RawRef{Off: 36, Width: 2}, Op: nic.CmpEq, Val: 80},
		}},
		SnapLen: 54,
	})
	if err != nil {
		b.Fatal(err)
	}
	pkts := prePackets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dev.Process(&pkts[i%len(pkts)])
	}
	r := rows[0]
	b.ReportMetric(float64(r.DumbBytes)/float64(r.HostBytes), "byte-reduction-x")
}

// BenchmarkE8_OverloadPolicy times the host capture path at 2x overload
// and reports the loss there plus the loss at 60% load (which must be ~0:
// complex queries need no sampling below the knee, paper §4).
func BenchmarkE8_OverloadPolicy(b *testing.B) {
	rows, err := experiments.E8(1.0, []float64{300, 900})
	if err != nil {
		b.Fatal(err)
	}
	pipe, err := experiments.CompiledHTTPPipeline()
	if err != nil {
		b.Fatal(err)
	}
	st, err := capture.NewStack(capture.ModeHostLFTA, capture.DefaultParams(), pipe, 1)
	if err != nil {
		b.Fatal(err)
	}
	pkts := prePackets()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pkts[i%len(pkts)]
		p.TS = uint64(i) * 8 // 125k pps: overload
		st.Arrive(&p)
	}
	b.ReportMetric(rows[0].LossPct, "losspct-300Mb")
	b.ReportMetric(rows[1].LossPct, "losspct-900Mb")
}
