// Package capture simulates the measurement substrate of the paper's §4
// experiment: a host capture stack with per-packet interrupt costs,
// per-byte copy costs, interrupt livelock under overload, a disk-dump
// path with long unpredictable write stalls, and a programmable NIC that
// can pre-filter packets or host LFTAs outright.
//
// The model is a single-CPU priority-preemptive queueing simulation in
// virtual time: interrupt work always preempts processing work, the ring
// between them is finite, and a full ring drops packets. This reproduces
// the qualitative behavior the paper reports — "at this point the system
// experienced interrupt livelock" and "touching disk kills performance
// not because it is slow but because it generates long and unpredictable
// delays" — with abstract cost units in place of the 733 MHz testbed.
package capture

import (
	"fmt"
	"math/rand"

	"gigascope/internal/pkt"
)

// Mode selects one of the paper's four §4 configurations.
type Mode uint8

const (
	// ModeDiskDump writes full packets to disk for post-facto analysis.
	ModeDiskDump Mode = iota + 1
	// ModePcapDiscard reads packets from the NIC and discards them (the
	// best-case host processing bound).
	ModePcapDiscard
	// ModeHostLFTA runs Gigascope with LFTAs on the host (reading from
	// the libpcap-equivalent path).
	ModeHostLFTA
	// ModeNICLFTA runs Gigascope with LFTAs executing on the programmable
	// NIC; only qualifying tuples cross to the host.
	ModeNICLFTA
)

func (m Mode) String() string {
	switch m {
	case ModeDiskDump:
		return "disk dump"
	case ModePcapDiscard:
		return "libpcap discard"
	case ModeHostLFTA:
		return "gigascope host-LFTA"
	case ModeNICLFTA:
		return "gigascope NIC-LFTA"
	}
	return "?"
}

// Params is the abstract cost model, in CPU-microseconds of the simulated
// host. Defaults are calibrated so the §4 shape holds (disk ≈ 180,
// pcap ≈ host-LFTA ≈ 480, NIC-LFTA ≈ 610+ Mbit/s at 2% loss).
type Params struct {
	InterruptUs    float64 // per-packet kernel/interrupt cost on the host
	CopyPerByteUs  float64 // per captured byte copied to user space
	AppPerPktUs    float64 // discard-path application cost
	LFTAPerPktUs   float64 // host LFTA evaluation per packet
	HFTAPerTupleUs float64 // HFTA fixed cost per tuple
	RegexPerByteUs float64 // HFTA regex cost per payload byte

	DiskPerByteUs  float64 // disk write cost per byte
	DiskStallEvery int     // bytes between write stalls
	DiskStallUs    float64 // mean stall duration (exponential)

	TupleDeliverUs float64 // per-tuple delivery interrupt (NIC mode)
	NICPerPktUs    float64 // NIC processor cost per packet (NIC mode)
	NICBacklogUs   float64 // max NIC backlog before input overrun

	// SteerPerPktUs is the per-packet RSS steering cost (flow hash plus
	// per-queue delivery bookkeeping) charged on the interrupt path when
	// the host runs the LFTAs sharded across cores (SetShards > 1). It
	// models the NIC/driver work of multi-queue receive; the LFTA
	// evaluation itself then runs on the shard workers, off this
	// simulated capture CPU.
	SteerPerPktUs float64

	RingPackets int // host ring capacity between interrupts and processing
}

// DefaultParams returns the calibrated cost model.
func DefaultParams() Params {
	return Params{
		InterruptUs:    10.0,
		CopyPerByteUs:  0.006,
		AppPerPktUs:    0.7,
		LFTAPerPktUs:   0.3,
		HFTAPerTupleUs: 1.0,
		RegexPerByteUs: 0.004,

		DiskPerByteUs:  0.020,
		DiskStallEvery: 4 << 20,
		DiskStallUs:    30_000,

		TupleDeliverUs: 4.0,
		NICPerPktUs:    13.0,
		NICBacklogUs:   1500,

		SteerPerPktUs: 0.05,

		RingPackets: 2048,
	}
}

// Pipeline is the query work the stack runs per packet. Filter is the
// LFTA decision (wired to real compiled operators by the harness);
// HFTABytes gives the expensive per-tuple byte count (regex input).
type Pipeline struct {
	Filter    func(*pkt.Packet) bool
	HFTABytes func(*pkt.Packet) int
	SnapLen   int // NIC snap length, 0 = full packets
}

// Stats accumulates the run's outcome.
type Stats struct {
	Offered     uint64 // packets offered on the wire
	OfferedBits uint64
	NICFiltered uint64 // intentionally discarded by the NIC filter (not loss)
	NICOverrun  uint64 // lost: NIC processor could not keep up
	RingDrops   uint64 // lost: host ring full (livelock regime)
	Delivered   uint64 // packets (or tuples) handed to processing
	Matched     uint64 // tuples the LFTA passed to the HFTA
	Steered     uint64 // packets charged RSS steering cost (SetShards > 1)
	DiskBytes   uint64
	DiskStalls  uint64
}

// Lost returns the capacity-loss packet count (intentional filtering
// excluded).
func (s Stats) Lost() uint64 { return s.NICOverrun + s.RingDrops }

// LossRate returns lost packets / offered packets.
func (s Stats) LossRate() float64 {
	if s.Offered == 0 {
		return 0
	}
	return float64(s.Lost()) / float64(s.Offered)
}

// Stack simulates one capture configuration.
type Stack struct {
	mode Mode
	par  Params
	pipe Pipeline
	rng  *rand.Rand

	lastUs     float64
	intBacklog float64   // pending interrupt work (preempts everything)
	queue      []float64 // pending processing work items (cost each)
	qhead      int
	nicBacklog float64
	sinceStall int
	shards     int // >1: RSS steering cost applies per packet

	stats Stats
}

// NewStack builds a simulation of the given configuration. LFTA modes
// require a pipeline with a filter.
func NewStack(mode Mode, par Params, pipe Pipeline, seed int64) (*Stack, error) {
	switch mode {
	case ModeDiskDump, ModePcapDiscard:
	case ModeHostLFTA, ModeNICLFTA:
		if pipe.Filter == nil {
			return nil, fmt.Errorf("capture: %s needs a pipeline filter", mode)
		}
	default:
		return nil, fmt.Errorf("capture: unknown mode %d", mode)
	}
	if par.RingPackets <= 0 {
		return nil, fmt.Errorf("capture: ring capacity must be positive")
	}
	return &Stack{mode: mode, par: par, pipe: pipe, rng: rand.New(rand.NewSource(seed))}, nil
}

// Stats returns the accumulated statistics.
func (st *Stack) Stats() Stats { return st.stats }

// SetShards tells the stack the host runs its LFTAs sharded across n
// cores: every arriving packet is then charged Params.SteerPerPktUs of
// RSS steering work on the interrupt path. n <= 1 restores the
// single-core model. Call before traffic starts.
func (st *Stack) SetShards(n int) {
	if n < 1 {
		n = 1
	}
	st.shards = n
}

// Stall charges the host CPU us microseconds of injected interrupt-level
// work (a driver hiccup, a preempting kernel task): it runs ahead of the
// processing half like any interrupt, so the ring backs up while it
// drains. The fault injector's lever for forcing ring saturation without
// raising the offered load. Call from the goroutine driving the stack.
func (st *Stack) Stall(us float64) {
	if us > 0 {
		st.intBacklog += us
	}
}

// queueLen returns the live processing queue length.
func (st *Stack) queueLen() int { return len(st.queue) - st.qhead }

// Livelocked reports whether the host ring is saturated: interrupt work
// is consuming the CPU faster than the processing half can drain it, so
// new arrivals are being dropped at the ring (receive livelock, §2 of the
// Mogul/Ramakrishnan analysis the capture model follows).
func (st *Stack) Livelocked() bool { return st.queueLen() >= st.par.RingPackets }

// drainTo advances the simulation clock to t, serving interrupt work
// first and processing work with whatever CPU time remains.
func (st *Stack) drainTo(t float64) {
	dt := t - st.lastUs
	if dt <= 0 {
		return
	}
	st.lastUs = t
	// The NIC is its own processor; it drains in parallel.
	st.nicBacklog -= dt
	if st.nicBacklog < 0 {
		st.nicBacklog = 0
	}
	// Host CPU: interrupts preempt processing.
	if st.intBacklog >= dt {
		st.intBacklog -= dt
		return
	}
	dt -= st.intBacklog
	st.intBacklog = 0
	for dt > 0 && st.qhead < len(st.queue) {
		if st.queue[st.qhead] <= dt {
			dt -= st.queue[st.qhead]
			st.qhead++
		} else {
			st.queue[st.qhead] -= dt
			dt = 0
		}
	}
	if st.qhead > 4096 && st.qhead*2 >= len(st.queue) {
		st.queue = append([]float64(nil), st.queue[st.qhead:]...)
		st.qhead = 0
	}
}

// Arrive offers one packet to the stack at its timestamp.
func (st *Stack) Arrive(p *pkt.Packet) {
	st.drainTo(float64(p.TS))
	st.stats.Offered++
	st.stats.OfferedBits += uint64(p.WireLen * 8)

	if st.mode == ModeNICLFTA {
		st.arriveNIC(p)
		return
	}

	// Host path: the interrupt fires for every wire packet, whether or
	// not it is subsequently dropped — this is what produces livelock.
	st.intBacklog += st.par.InterruptUs
	if st.shards > 1 {
		st.intBacklog += st.par.SteerPerPktUs
		st.stats.Steered++
	}
	if st.queueLen() >= st.par.RingPackets {
		st.stats.RingDrops++
		return
	}
	capBytes := p.CapLen()
	cost := float64(capBytes) * st.par.CopyPerByteUs
	switch st.mode {
	case ModePcapDiscard:
		cost += st.par.AppPerPktUs
	case ModeDiskDump:
		cost += float64(capBytes) * st.par.DiskPerByteUs
		st.stats.DiskBytes += uint64(capBytes)
		st.sinceStall += capBytes
		if st.par.DiskStallEvery > 0 && st.sinceStall >= st.par.DiskStallEvery {
			st.sinceStall = 0
			st.stats.DiskStalls++
			cost += st.rng.ExpFloat64() * st.par.DiskStallUs
		}
	case ModeHostLFTA:
		cost += st.par.LFTAPerPktUs
		if st.pipe.Filter(p) {
			st.stats.Matched++
			cost += st.par.HFTAPerTupleUs
			if st.pipe.HFTABytes != nil {
				cost += float64(st.pipe.HFTABytes(p)) * st.par.RegexPerByteUs
			}
		}
	}
	st.stats.Delivered++
	st.queue = append(st.queue, cost)
}

// ArriveBatch offers one poll window of packets, appending the survivors
// to kept and returning it. Only capacity loss (ring fills, NIC overruns)
// excludes a packet; intentional NIC filtering is not loss — Lost() — and
// such packets are still kept, matching how callers treat Arrive.
func (st *Stack) ArriveBatch(ps []*pkt.Packet, kept []*pkt.Packet) []*pkt.Packet {
	for _, p := range ps {
		lost := st.stats.Lost()
		st.Arrive(p)
		if st.stats.Lost() == lost {
			kept = append(kept, p)
		}
	}
	return kept
}

// arriveNIC models the programmable-NIC configuration: the NIC spends its
// own cycles per packet, discards non-matching packets without touching
// the host, and delivers qualifying tuples with a cheap coalesced
// interrupt.
func (st *Stack) arriveNIC(p *pkt.Packet) {
	if st.nicBacklog+st.par.NICPerPktUs > st.par.NICBacklogUs {
		st.stats.NICOverrun++
		return
	}
	st.nicBacklog += st.par.NICPerPktUs
	if !st.pipe.Filter(p) {
		st.stats.NICFiltered++
		return
	}
	st.stats.Matched++
	st.intBacklog += st.par.TupleDeliverUs
	if st.queueLen() >= st.par.RingPackets {
		st.stats.RingDrops++
		return
	}
	capBytes := p.CapLen()
	if st.pipe.SnapLen > 0 && capBytes > st.pipe.SnapLen {
		capBytes = st.pipe.SnapLen
	}
	cost := float64(capBytes)*st.par.CopyPerByteUs + st.par.HFTAPerTupleUs
	if st.pipe.HFTABytes != nil {
		cost += float64(st.pipe.HFTABytes(p)) * st.par.RegexPerByteUs
	}
	st.stats.Delivered++
	st.queue = append(st.queue, cost)
}
