// Package pkt defines raw network packets, byte-accurate frame builders,
// and the library of interpretation functions that map packet bytes to
// GSQL field values (paper §2.2: "The Gigascope run time system interprets
// the data packets as a collection of fields using a library of
// interpretation functions").
package pkt

import (
	"encoding/binary"
	"fmt"
	"sync/atomic"
)

// Layout constants for Ethernet II / IPv4 framing. The traffic synthesizer
// always emits IPv4 without options (IHL=5), which is also the common case
// the paper's NIC BPF pushdown assumes; the interpretation functions
// nonetheless honor the IHL field.
const (
	EthHeaderLen  = 14
	IPv4HeaderLen = 20 // without options
	TCPHeaderLen  = 20 // without options
	UDPHeaderLen  = 8

	EtherTypeIPv4 = 0x0800

	ProtoTCP = 6
	ProtoUDP = 17

	ipOff  = EthHeaderLen
	l4Base = EthHeaderLen + IPv4HeaderLen
)

// TCP flag bits.
const (
	FlagFIN = 1 << 0
	FlagSYN = 1 << 1
	FlagRST = 1 << 2
	FlagPSH = 1 << 3
	FlagACK = 1 << 4
	FlagURG = 1 << 5
)

// Packet is one captured frame plus capture metadata. TS is microseconds on
// the virtual clock. Data holds the captured bytes, which may be fewer than
// WireLen when a snap length was applied upstream.
type Packet struct {
	TS      uint64 // capture timestamp, microseconds
	WireLen int    // length on the wire
	Data    []byte // captured bytes, len(Data) <= WireLen
}

// CapLen returns the number of captured bytes.
func (p *Packet) CapLen() int { return len(p.Data) }

// Snap returns a copy of the packet truncated to at most n captured bytes.
// The underlying data is aliased, not copied.
func (p *Packet) Snap(n int) Packet {
	q := *p
	if n < len(q.Data) {
		q.Data = q.Data[:n]
	}
	return q
}

// U8, U16, U32 read big-endian unsigned fields, reporting false when the
// capture is too short.
func (p *Packet) U8(off int) (uint64, bool) {
	if off+1 > len(p.Data) {
		return 0, false
	}
	return uint64(p.Data[off]), true
}

func (p *Packet) U16(off int) (uint64, bool) {
	if off+2 > len(p.Data) {
		return 0, false
	}
	return uint64(binary.BigEndian.Uint16(p.Data[off:])), true
}

func (p *Packet) U32(off int) (uint64, bool) {
	if off+4 > len(p.Data) {
		return 0, false
	}
	return uint64(binary.BigEndian.Uint32(p.Data[off:])), true
}

// U48 reads a 6-byte big-endian field (MAC addresses).
func (p *Packet) U48(off int) (uint64, bool) {
	if off+6 > len(p.Data) {
		return 0, false
	}
	hi := uint64(binary.BigEndian.Uint16(p.Data[off:]))
	lo := uint64(binary.BigEndian.Uint32(p.Data[off+2:]))
	return hi<<32 | lo, true
}

// IsIPv4 reports whether the frame carries IPv4.
func (p *Packet) IsIPv4() bool {
	et, ok := p.U16(12)
	return ok && et == EtherTypeIPv4
}

// IPHeaderLen returns the IPv4 header length in bytes.
func (p *Packet) IPHeaderLen() (int, bool) {
	v, ok := p.U8(ipOff)
	if !ok {
		return 0, false
	}
	ihl := int(v & 0x0f)
	if ihl < 5 { // corrupt header: IHL below the 20-byte minimum
		return 0, false
	}
	return ihl * 4, true
}

// L4Offset returns the offset of the transport header.
func (p *Packet) L4Offset() (int, bool) {
	ihl, ok := p.IPHeaderLen()
	if !ok {
		return 0, false
	}
	return ipOff + ihl, true
}

// IPProto returns the IPv4 protocol field.
func (p *Packet) IPProto() (uint64, bool) { return p.U8(ipOff + 9) }

// PayloadOffset returns the offset of the transport payload for TCP/UDP
// frames.
func (p *Packet) PayloadOffset() (int, bool) {
	l4, ok := p.L4Offset()
	if !ok {
		return 0, false
	}
	proto, ok := p.IPProto()
	if !ok {
		return 0, false
	}
	switch proto {
	case ProtoTCP:
		raw, ok := p.U8(l4 + 12)
		if !ok {
			return 0, false
		}
		return l4 + int(raw>>4)*4, true
	case ProtoUDP:
		return l4 + UDPHeaderLen, true
	}
	return 0, false
}

// Payload returns the transport payload bytes within the capture.
func (p *Packet) Payload() ([]byte, bool) {
	off, ok := p.PayloadOffset()
	if !ok || off > len(p.Data) {
		return nil, false
	}
	return p.Data[off:], true
}

// TCPSpec describes a TCP segment to synthesize.
type TCPSpec struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	Seq, Ack         uint32
	Flags            uint8
	Window           uint16
	TTL              uint8
	Payload          []byte
}

// UDPSpec describes a UDP datagram to synthesize.
type UDPSpec struct {
	SrcIP, DstIP     uint32
	SrcPort, DstPort uint16
	TTL              uint8
	Payload          []byte
}

// BuildTCP synthesizes a byte-accurate Ethernet/IPv4/TCP frame.
func BuildTCP(ts uint64, s TCPSpec) Packet {
	totalIP := IPv4HeaderLen + TCPHeaderLen + len(s.Payload)
	data := make([]byte, EthHeaderLen+totalIP)
	buildEth(data, s.SrcIP, s.DstIP)
	buildIPv4(data, totalIP, ProtoTCP, s.TTL, s.SrcIP, s.DstIP)
	tcp := data[l4Base:]
	binary.BigEndian.PutUint16(tcp[0:], s.SrcPort)
	binary.BigEndian.PutUint16(tcp[2:], s.DstPort)
	binary.BigEndian.PutUint32(tcp[4:], s.Seq)
	binary.BigEndian.PutUint32(tcp[8:], s.Ack)
	tcp[12] = (TCPHeaderLen / 4) << 4
	tcp[13] = s.Flags
	binary.BigEndian.PutUint16(tcp[14:], s.Window)
	copy(tcp[TCPHeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(tcp[16:], l4Checksum(data, ProtoTCP))
	return Packet{TS: ts, WireLen: len(data), Data: data}
}

// BuildUDP synthesizes a byte-accurate Ethernet/IPv4/UDP frame.
func BuildUDP(ts uint64, s UDPSpec) Packet {
	totalIP := IPv4HeaderLen + UDPHeaderLen + len(s.Payload)
	data := make([]byte, EthHeaderLen+totalIP)
	buildEth(data, s.SrcIP, s.DstIP)
	buildIPv4(data, totalIP, ProtoUDP, s.TTL, s.SrcIP, s.DstIP)
	udp := data[l4Base:]
	binary.BigEndian.PutUint16(udp[0:], s.SrcPort)
	binary.BigEndian.PutUint16(udp[2:], s.DstPort)
	binary.BigEndian.PutUint16(udp[4:], uint16(UDPHeaderLen+len(s.Payload)))
	copy(udp[UDPHeaderLen:], s.Payload)
	binary.BigEndian.PutUint16(udp[6:], l4Checksum(data, ProtoUDP))
	return Packet{TS: ts, WireLen: len(data), Data: data}
}

func buildEth(data []byte, srcIP, dstIP uint32) {
	// Synthesize locally administered MACs derived from the IPs so that
	// eth_src/eth_dst are stable, meaningful fields.
	data[0] = 0x02
	binary.BigEndian.PutUint32(data[2:], dstIP)
	data[6] = 0x02
	binary.BigEndian.PutUint32(data[8:], srcIP)
	binary.BigEndian.PutUint16(data[12:], EtherTypeIPv4)
}

// ipIDCounter is atomic: traffic generators build packets from many
// goroutines at once.
var ipIDCounter atomic.Uint32

func buildIPv4(data []byte, totalLen int, proto, ttl uint8, src, dst uint32) {
	ip := data[ipOff:]
	ip[0] = 0x45 // version 4, IHL 5
	binary.BigEndian.PutUint16(ip[2:], uint16(totalLen))
	binary.BigEndian.PutUint16(ip[4:], uint16(ipIDCounter.Add(1)))
	if ttl == 0 {
		ttl = 64
	}
	ip[8] = ttl
	ip[9] = proto
	binary.BigEndian.PutUint32(ip[12:], src)
	binary.BigEndian.PutUint32(ip[16:], dst)
	binary.BigEndian.PutUint16(ip[10:], ipChecksum(ip[:IPv4HeaderLen]))
}

// ipChecksum computes the standard internet checksum over the IPv4 header
// (checksum field assumed zero).
func ipChecksum(hdr []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(hdr); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(hdr[i:]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// l4Checksum computes the TCP/UDP checksum including the IPv4 pseudo
// header. The frame's checksum field must be zero when called.
func l4Checksum(frame []byte, proto uint8) uint16 {
	seg := frame[l4Base:]
	var sum uint32
	// Pseudo header: src, dst, zero+proto, length.
	sum += uint32(binary.BigEndian.Uint16(frame[ipOff+12:]))
	sum += uint32(binary.BigEndian.Uint16(frame[ipOff+14:]))
	sum += uint32(binary.BigEndian.Uint16(frame[ipOff+16:]))
	sum += uint32(binary.BigEndian.Uint16(frame[ipOff+18:]))
	sum += uint32(proto)
	sum += uint32(len(seg))
	for i := 0; i+1 < len(seg); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(seg[i:]))
	}
	if len(seg)%2 == 1 {
		sum += uint32(seg[len(seg)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Verify checks the structural integrity of a full (unsnapped) frame:
// ethertype, IP header checksum, and length consistency. Used by tests and
// the generator's self-checks.
func Verify(p *Packet) error {
	if !p.IsIPv4() {
		return fmt.Errorf("pkt: not an IPv4 frame")
	}
	ihl, ok := p.IPHeaderLen()
	if !ok || ihl < IPv4HeaderLen {
		return fmt.Errorf("pkt: bad IHL")
	}
	tl, ok := p.U16(ipOff + 2)
	if !ok {
		return fmt.Errorf("pkt: truncated IP header")
	}
	if int(tl)+EthHeaderLen != p.WireLen {
		return fmt.Errorf("pkt: IP total length %d inconsistent with wire length %d", tl, p.WireLen)
	}
	if ipOff+ihl > len(p.Data) {
		return fmt.Errorf("pkt: capture shorter than the %d-byte IP header", ihl)
	}
	if ipChecksum(p.Data[ipOff:ipOff+ihl]) != 0 {
		return fmt.Errorf("pkt: bad IP checksum")
	}
	return nil
}
