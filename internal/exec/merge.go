package exec

import (
	"fmt"

	"gigascope/internal/schema"
)

// Merge is the order-preserving union operator (paper §2.2): it combines N
// input streams sharing a schema into one stream whose merge attribute
// remains nondecreasing. The paper notes this operator was implemented
// before join — monitoring a full-duplex optical link requires merging the
// two simplex directions.
//
// A slow input would block the merge (its next tuple could precede
// everything buffered on the fast inputs); heartbeats carrying lower
// bounds unblock it (paper §3). When an input starves progress, the
// OnBlocked callback fires so the RTS can request an on-demand heartbeat
// upstream.
type Merge struct {
	cols  []int // merge attribute index per input
	out   *schema.Schema
	sides []mergeSide
	// OnBlocked, if set, is invoked with the port that is starving
	// progress (empty queue and lowest bound).
	OnBlocked func(port int)
	stats     Counters
	// MaxBuffer bounds each input queue; 0 means unbounded. On overflow
	// the oldest buffered tuple is emitted out of order rather than lost
	// (overload degradation), counted in Stats().Reordered. Dropped counts
	// only tuples that are actually discarded (NULL merge attribute).
	MaxBuffer int
}

type mergeSide struct {
	queue []schema.Tuple
	start int
	wm    schema.Value
	hasWM bool
	done  bool
}

// NewMerge builds a merge operator over n inputs; cols gives the merge
// attribute index in each input's schema.
func NewMerge(cols []int, out *schema.Schema) (*Merge, error) {
	if len(cols) < 2 {
		return nil, fmt.Errorf("exec: merge needs at least two inputs")
	}
	return &Merge{cols: cols, out: out, sides: make([]mergeSide, len(cols))}, nil
}

// Ports implements Operator.
func (o *Merge) Ports() int { return len(o.cols) }

// OutSchema implements Operator.
func (o *Merge) OutSchema() *schema.Schema { return o.out }

// Stats returns a snapshot of the operator counters.
func (o *Merge) Stats() OpStats { return o.stats.Snapshot() }

// Buffered returns the number of tuples queued on the given port.
func (o *Merge) Buffered(port int) int {
	return len(o.sides[port].queue) - o.sides[port].start
}

// MaxBuffered returns the high-water mark across ports, used by the E3
// experiment to show heartbeats bounding merge memory.
func (o *Merge) MaxBuffered() int {
	max := 0
	for i := range o.sides {
		if n := o.Buffered(i); n > max {
			max = n
		}
	}
	return max
}

// Push implements Operator.
func (o *Merge) Push(port int, m Message, emit Emit) error {
	if port < 0 || port >= len(o.sides) {
		return fmt.Errorf("exec: merge port %d out of range", port)
	}
	s := &o.sides[port]
	if m.IsHeartbeat() {
		idx := o.cols[port]
		if idx < len(m.Bounds) && !m.Bounds[idx].IsNull() {
			o.raiseWM(s, m.Bounds[idx])
		}
		o.drain(emit)
		o.emitHeartbeat(emit)
		return nil
	}
	o.stats.In.Add(1)
	v := m.Tuple[o.cols[port]]
	if v.IsNull() {
		o.stats.Dropped.Add(1)
		return nil
	}
	o.raiseWM(s, v)
	if o.MaxBuffer > 0 && len(s.queue)-s.start >= o.MaxBuffer {
		// Overflow: emit the oldest buffered tuple immediately. The output
		// ordering property degrades but the tuple is not lost; count it as
		// a disorder event, not a drop.
		o.stats.Reordered.Add(1)
		o.emitFront(s, emit)
	}
	s.queue = append(s.queue, m.Tuple.Clone())
	o.drain(emit)
	return nil
}

func (o *Merge) raiseWM(s *mergeSide, v schema.Value) {
	if !s.hasWM || v.Compare(s.wm) > 0 {
		s.wm = v.Clone()
		s.hasWM = true
	}
}

// drain emits queued tuples while global order is certain: the smallest
// queued head can be emitted once every other input guarantees (by queue
// content or watermark) that nothing earlier can arrive.
func (o *Merge) drain(emit Emit) {
	for {
		port := -1
		var head schema.Value
		blocked := -1
		for i := range o.sides {
			s := &o.sides[i]
			if s.start < len(s.queue) {
				v := s.queue[s.start][o.cols[i]]
				if port < 0 || v.Compare(head) < 0 {
					port, head = i, v
				}
			}
		}
		if port < 0 {
			return // all queues empty
		}
		// Every other side must have moved past `head`.
		for i := range o.sides {
			if i == port {
				continue
			}
			s := &o.sides[i]
			if s.start < len(s.queue) || s.done {
				continue // its head was considered, or stream ended
			}
			if !s.hasWM || s.wm.Compare(head) < 0 {
				blocked = i
				break
			}
		}
		if blocked >= 0 {
			if o.OnBlocked != nil {
				o.OnBlocked(blocked)
			}
			return
		}
		o.emitFront(&o.sides[port], emit)
	}
}

func (o *Merge) emitFront(s *mergeSide, emit Emit) {
	t := s.queue[s.start]
	s.queue[s.start] = nil
	s.start++
	if s.start > 1024 && s.start*2 >= len(s.queue) {
		s.queue = append([]schema.Tuple(nil), s.queue[s.start:]...)
		s.start = 0
	}
	o.stats.Out.Add(1)
	emit(TupleMsg(t))
}

// emitHeartbeat publishes the merged bound: the minimum over inputs of
// their watermark (an input with no watermark yet blocks any bound).
func (o *Merge) emitHeartbeat(emit Emit) {
	var bound schema.Value
	for i := range o.sides {
		s := &o.sides[i]
		if s.done {
			continue // ended: cannot hold the bound down
		}
		if !s.hasWM {
			return
		}
		if bound.IsNull() || s.wm.Compare(bound) < 0 {
			bound = s.wm
		}
	}
	if bound.IsNull() {
		return
	}
	bounds := make(schema.Tuple, len(o.out.Cols))
	bounds[o.cols[0]] = bound
	emit(HeartbeatMsg(bounds))
}

// PortDone marks an input as ended (its query node shut down); the merge
// no longer waits for it.
func (o *Merge) PortDone(port int, emit Emit) {
	if port >= 0 && port < len(o.sides) {
		o.sides[port].done = true
		o.drain(emit)
	}
}

// FlushAll implements Operator: emits everything left in the queues in
// merge order (end of stream).
func (o *Merge) FlushAll(emit Emit) error {
	for i := range o.sides {
		o.sides[i].done = true
	}
	o.drain(emit)
	// drain with all ports done empties every queue in global order.
	return nil
}
