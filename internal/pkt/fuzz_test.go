package pkt_test

import (
	"testing"

	"gigascope/internal/faultinject"
	"gigascope/internal/pkt"
)

// FuzzPacketInterp runs arbitrary capture bytes through the entire
// interpretation library — every extractor, every NIC-pushable raw
// reference, plus the structural helpers. Extractors must report absence
// on unreadable frames (truncated captures, corrupt IHL, bogus lengths),
// never panic or read out of bounds.
func FuzzPacketInterp(f *testing.F) {
	tcp := pkt.BuildTCP(1_000_000, pkt.TCPSpec{
		SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 30000, DstPort: 80,
		Payload: []byte("GET / HTTP/1.1\r\n"),
	})
	udp := pkt.BuildUDP(2_000_000, pkt.UDPSpec{
		SrcIP: 0x0a000003, DstIP: 0x0a000004, SrcPort: 53, DstPort: 53,
		Payload: []byte("dns"),
	})
	f.Add(tcp.Data, uint64(tcp.WireLen))
	f.Add(udp.Data, uint64(udp.WireLen))
	// Truncation boundaries: mid-Ethernet, mid-IP, mid-transport.
	for _, cut := range []int{0, 1, 13, 14, 20, 33, 34, 35, 53} {
		if cut < len(tcp.Data) {
			f.Add(append([]byte(nil), tcp.Data[:cut]...), uint64(tcp.WireLen))
		}
	}
	// Seeded faulted frames: corrupt IHL, bogus total length, IP options.
	for _, kindCfg := range []faultinject.Config{
		{Seed: 1, BadIHL: 1},
		{Seed: 2, BadTotalLen: 1},
		{Seed: 3, Options: 1},
	} {
		inj := faultinject.New(kindCfg)
		p := tcp
		if q, _, ok := inj.Apply(&p); ok {
			f.Add(append([]byte(nil), q.Data...), uint64(q.WireLen))
		}
	}
	f.Add([]byte{}, uint64(0))

	names := pkt.InterpNames()
	f.Fuzz(func(t *testing.T, data []byte, wireLen uint64) {
		p := &pkt.Packet{TS: 1, WireLen: int(wireLen % (1 << 20)), Data: data}
		for _, name := range names {
			spec, ok := pkt.LookupInterp(name)
			if !ok {
				t.Fatalf("registered name %s not found", name)
			}
			if v, ok := spec.Extract(p); ok && int(v.Type) < 0 {
				t.Fatalf("%s produced invalid value type", name)
			}
			if spec.Raw != nil {
				spec.Raw.Read(p)
			}
		}
		p.IsIPv4()
		p.IPHeaderLen()
		p.L4Offset()
		p.PayloadOffset()
		p.Payload()
		_ = pkt.Verify(p)
		p.Snap(32)
	})
}
