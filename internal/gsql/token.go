// Package gsql implements the GSQL language: lexer, abstract syntax tree,
// and parser for both the data definition language (PROTOCOL declarations
// with interpretation functions and ordering annotations) and the query
// language (SELECT / MERGE with DEFINE blocks, paper §2.2).
package gsql

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind uint8

const (
	TokEOF TokKind = iota
	TokIdent
	TokKeyword
	TokInt    // unsigned integer literal
	TokFloat  // float literal
	TokString // 'single quoted' or "double quoted" string literal
	TokIP     // dotted-quad IPv4 literal
	TokParam  // $name query parameter reference
	TokLParen
	TokRParen
	TokLBrace
	TokRBrace
	TokLBracket
	TokRBracket
	TokComma
	TokSemi
	TokDot
	TokColon
	TokStar
	TokPlus
	TokMinus
	TokSlash
	TokPercent
	TokAmp
	TokPipe
	TokCaret
	TokTilde
	TokShl
	TokShr
	TokEq
	TokNe
	TokLt
	TokLe
	TokGt
	TokGe
)

func (k TokKind) String() string {
	switch k {
	case TokEOF:
		return "end of input"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokInt:
		return "integer"
	case TokFloat:
		return "float"
	case TokString:
		return "string"
	case TokIP:
		return "IP literal"
	case TokParam:
		return "parameter"
	case TokLParen:
		return "'('"
	case TokRParen:
		return "')'"
	case TokLBrace:
		return "'{'"
	case TokRBrace:
		return "'}'"
	case TokLBracket:
		return "'['"
	case TokRBracket:
		return "']'"
	case TokComma:
		return "','"
	case TokSemi:
		return "';'"
	case TokDot:
		return "'.'"
	case TokColon:
		return "':'"
	case TokStar:
		return "'*'"
	case TokPlus:
		return "'+'"
	case TokMinus:
		return "'-'"
	case TokSlash:
		return "'/'"
	case TokPercent:
		return "'%'"
	case TokAmp:
		return "'&'"
	case TokPipe:
		return "'|'"
	case TokCaret:
		return "'^'"
	case TokTilde:
		return "'~'"
	case TokShl:
		return "'<<'"
	case TokShr:
		return "'>>'"
	case TokEq:
		return "'='"
	case TokNe:
		return "'<>'"
	case TokLt:
		return "'<'"
	case TokLe:
		return "'<='"
	case TokGt:
		return "'>'"
	case TokGe:
		return "'>='"
	}
	return fmt.Sprintf("token(%d)", uint8(k))
}

// Keywords recognized case-insensitively. The lexer normalizes keyword text
// to upper case.
// PROTOCOL and BASE are deliberately NOT keywords: "protocol" is a column
// of the built-in IPV4 schema, so the parser matches them contextually.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"AS": true, "HAVING": true, "AND": true, "OR": true, "NOT": true,
	"MERGE": true, "DEFINE": true, "TRUE": true,
	"FALSE": true, "NULL": true, "IN": true,
}

// Pos is a source position.
type Pos struct {
	Line, Col int
}

func (p Pos) String() string { return fmt.Sprintf("%d:%d", p.Line, p.Col) }

// Token is one lexical token.
type Token struct {
	Kind TokKind
	Text string // identifier text, keyword (upper-cased), literal text
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokKeyword, TokInt, TokFloat, TokIP:
		return fmt.Sprintf("%q", t.Text)
	case TokString:
		return fmt.Sprintf("'%s'", t.Text)
	case TokParam:
		return "$" + t.Text
	}
	return t.Kind.String()
}

// Error is a positioned GSQL syntax or semantic error.
type Error struct {
	Pos Pos
	Msg string
}

func (e *Error) Error() string { return fmt.Sprintf("gsql:%s: %s", e.Pos, e.Msg) }

func errf(pos Pos, format string, args ...any) *Error {
	return &Error{Pos: pos, Msg: fmt.Sprintf(format, args...)}
}
