package rts

import (
	"fmt"
	"sync"
	"sync/atomic"

	"gigascope/internal/core"
	"gigascope/internal/exec"
	"gigascope/internal/pkt"
	"gigascope/internal/schema"
)

// queryNode hosts one instantiated plan node. HFTA nodes run their own
// goroutine fed by input subscriptions; LFTA nodes are executed inline on
// their interface's capture path (paper §3: LFTAs "are linked into the
// stream manager").
//
// Output moves in batches: emissions accumulate in pending and cross the
// ring as one exec.Batch when the flush policy fires. Flush reasons:
//
//   - size:   pending reached Config.MaxBatch;
//   - hb:     a heartbeat was appended (LFTA and source nodes flush so
//     downstream sees ordering bounds immediately — virtual-clock
//     latency is unchanged vs. the per-message pipeline);
//   - window: an execution window closed (an HFTA finished one inbox
//     batch, a capture poll window ended, or the stream shut down).
type queryNode struct {
	m     *Manager
	name  string
	level core.Level
	// node/inst are set for compiled plan nodes; user-written nodes
	// (AddUserNode) carry only op; clock-driven source nodes
	// (AddSourceNode) carry only src.
	node      *core.Node
	inst      *core.Instance
	op        exec.Operator
	src       SourceNode
	srcClosed bool
	pub       *publisher
	inputs    []*Subscription

	// Batch assembly. pending is touched only by the node's single
	// emitting goroutine (HFTA loop, or capture path under mu).
	maxBatch    int
	hbFlush     bool // flush on heartbeat (LFTA/source nodes)
	pending     exec.Batch
	flushSize   atomic.Uint64
	flushHB     atomic.Uint64
	flushWindow atomic.Uint64

	// LFTA-side counters; the interface goroutine is the only writer.
	packets atomic.Uint64

	// Runtime ordering validation (Config.ValidateOrdering).
	checkers   []*schema.OrderChecker
	violations atomic.Uint64

	// HFTA goroutine state. started is atomic: Manager.Start (and AddQuery
	// after start) write it under the manager lock while SetParams reads it
	// from arbitrary goroutines.
	inbox   chan portBatch
	cmds    chan func()
	done    chan struct{}
	started atomic.Bool
	mu      sync.Mutex // guards inline LFTA execution vs setParams

	// shardIdx is 0 for unsharded nodes and i+1 for the i'th shard instance
	// of a sharded LFTA (see Manager.addShardedLFTA).
	shardIdx int
	// shardsOf lists the per-shard LFTA instances feeding this node when it
	// is a shard-reunifying merge; SetParams on the original query name
	// forwards to each shard.
	shardsOf []*queryNode
}

type portBatch struct {
	port  int
	batch exec.Batch
	done  bool // the port's input stream ended
}

// start launches the HFTA node goroutine and its input forwarders. It
// holds qn.mu across the transition so setParams cannot rebind directly
// (believing the node idle) while the loop goroutine comes up — see the
// started re-check in setParams.
func (qn *queryNode) start() {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	if !qn.started.CompareAndSwap(false, true) {
		return
	}
	qn.inbox = make(chan portBatch, qn.m.cfg.inboxDepth())
	qn.cmds = make(chan func(), 4)
	qn.done = make(chan struct{})

	// Give the merge operator a way to demand heartbeats from a starving
	// input (the paper's on-demand ordering update tokens, §3).
	if mg, ok := qn.op.(*exec.Merge); ok {
		inputs := qn.inputs
		mg.OnBlocked = func(port int) {
			if port >= 0 && port < len(inputs) {
				inputs[port].RequestHeartbeat()
			}
		}
	}

	var fwd sync.WaitGroup
	for i, sub := range qn.inputs {
		fwd.Add(1)
		go func(port int, sub *Subscription) {
			defer fwd.Done()
			for b := range sub.C {
				qn.inbox <- portBatch{port: port, batch: b}
			}
			qn.inbox <- portBatch{port: port, done: true}
		}(i, sub)
	}
	qn.m.wg.Add(1)
	go func() {
		defer qn.m.wg.Done()
		qn.loop(len(qn.inputs))
	}()
	go func() {
		fwd.Wait()
		close(qn.inbox)
	}()
}

func (qn *queryNode) loop(openPorts int) {
	defer close(qn.done)
	for {
		select {
		case cmd := <-qn.cmds:
			cmd()
			continue
		default:
		}
		select {
		case cmd := <-qn.cmds:
			cmd()
		case pm, ok := <-qn.inbox:
			if !ok {
				qn.op.FlushAll(qn.emit)
				qn.flushPending(&qn.flushWindow)
				qn.pub.close()
				return
			}
			if pm.done {
				openPorts--
				if mg, isMerge := qn.op.(*exec.Merge); isMerge {
					mg.PortDone(pm.port, qn.emit)
				}
			} else {
				exec.PushBatch(qn.op, pm.port, pm.batch, qn.emitBatch)
			}
			// Window end: one inbox batch fully processed. Flushing here
			// keeps end-to-end latency identical to the per-message
			// pipeline — output never waits for unrelated future input.
			qn.flushPending(&qn.flushWindow)
		}
	}
}

// initCheckers builds per-column ordering checkers for the output schema.
func (qn *queryNode) initCheckers(out *schema.Schema) {
	qn.checkers = make([]*schema.OrderChecker, len(out.Cols))
	for i, c := range out.Cols {
		if c.Ordering.Usable() {
			qn.checkers[i] = schema.NewOrderChecker(c.Ordering, nil)
		}
	}
}

// checkOrdering validates imputed orderings when enabled.
func (qn *queryNode) checkOrdering(m exec.Message) {
	if qn.checkers == nil || m.IsHeartbeat() {
		return
	}
	for i, ch := range qn.checkers {
		if ch == nil || i >= len(m.Tuple) {
			continue
		}
		if err := ch.Observe(m.Tuple[i], m.Tuple); err != nil {
			qn.violations.Add(1)
		}
	}
}

// emit appends one message to the pending batch, flushing per policy.
// Safe: each node emits from a single goroutine (or under its mutex).
func (qn *queryNode) emit(m exec.Message) {
	qn.checkOrdering(m)
	qn.pending = append(qn.pending, m)
	if len(qn.pending) >= qn.maxBatch {
		qn.flushPending(&qn.flushSize)
	} else if qn.hbFlush && m.IsHeartbeat() {
		qn.flushPending(&qn.flushHB)
	}
}

// emitBatch accepts a whole operator output batch, taking ownership.
func (qn *queryNode) emitBatch(b exec.Batch) {
	for i := range b {
		qn.checkOrdering(b[i])
	}
	if len(qn.pending) == 0 {
		qn.pending = b
	} else {
		qn.pending = append(qn.pending, b...)
	}
	if len(qn.pending) >= qn.maxBatch {
		qn.flushPending(&qn.flushSize)
	}
}

// flushPending publishes the pending batch and records the flush reason.
// The batch is handed to subscribers, so the backing array is never reused.
func (qn *queryNode) flushPending(reason *atomic.Uint64) {
	if len(qn.pending) == 0 {
		return
	}
	reason.Add(1)
	b := qn.pending
	qn.pending = nil
	qn.pub.publish(b)
}

// pushPackets runs one capture poll window through an LFTA inline, under a
// single lock acquisition; the output accumulated over the window flushes
// onto the rings as one batch (unless size/heartbeat flushes fired first).
func (qn *queryNode) pushPackets(ps []*pkt.Packet) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	qn.packets.Add(uint64(len(ps)))
	for _, p := range ps {
		qn.inst.PushPacket(p, qn.emit)
	}
	qn.flushPending(&qn.flushWindow)
}

// clockHeartbeat emits a source heartbeat through the LFTA.
func (qn *queryNode) clockHeartbeat(usec uint64) {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	qn.inst.ClockHeartbeat(usec, qn.emit)
}

// flushInline flushes an LFTA at shutdown.
func (qn *queryNode) flushInline() {
	qn.mu.Lock()
	defer qn.mu.Unlock()
	qn.op.FlushAll(qn.emit)
	qn.flushPending(&qn.flushWindow)
	qn.pub.close()
}

// setParams rebinds parameters. HFTA nodes apply the change on their own
// goroutine; LFTAs under the interface lock.
func (qn *queryNode) setParams(params map[string]schema.Value) error {
	if qn.inst == nil {
		if len(qn.shardsOf) > 0 {
			// Shard-reunifying node: the parameters live in the per-shard
			// LFTA instances.
			for _, shard := range qn.shardsOf {
				if err := shard.setParams(params); err != nil {
					return err
				}
			}
			return nil
		}
		return fmt.Errorf("rts: %s is a user-written node; it has no query parameters", qn.name)
	}
	if qn.level == core.LevelLFTA {
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return qn.inst.Rebind(params)
	}
	// Checking started and rebinding must be one critical section with
	// start(): otherwise the node can start — and its loop begin executing
	// the operator — between the check and the direct rebind.
	qn.mu.Lock()
	if !qn.started.Load() {
		defer qn.mu.Unlock()
		return qn.inst.Rebind(params)
	}
	cmds, done := qn.cmds, qn.done
	qn.mu.Unlock()
	errc := make(chan error, 1)
	select {
	case cmds <- func() { errc <- qn.inst.Rebind(params) }:
	case <-done:
		// The loop exited; nothing executes the operator anymore.
		qn.mu.Lock()
		defer qn.mu.Unlock()
		return qn.inst.Rebind(params)
	}
	select {
	case err := <-errc:
		return err
	case <-done:
		return nil
	}
}

func (qn *queryNode) stats() NodeStats {
	ns := NodeStats{
		Name:        qn.name,
		Level:       qn.level,
		Shard:       qn.shardIdx,
		RingDrop:    qn.pub.drops.Load(),
		HBDrop:      qn.pub.hbDrops.Load(),
		Batches:     qn.pub.batches.Load(),
		BatchTuples: qn.pub.tuples.Load(),
		FlushSize:   qn.flushSize.Load(),
		FlushHB:     qn.flushHB.Load(),
		FlushWindow: qn.flushWindow.Load(),
		Packets:     qn.packets.Load(),
	}
	type statser interface{ Stats() exec.OpStats }
	switch {
	case qn.inst != nil:
		ns.Op = qn.inst.Stats()
		ns.BadPkts = qn.inst.PacketsDropped()
	case qn.op != nil:
		if s, ok := qn.op.(statser); ok {
			ns.Op = s.Stats()
		}
	case qn.src != nil:
		if s, ok := qn.src.(statser); ok {
			ns.Op = s.Stats()
		}
	}
	ns.OrderViolations = qn.violations.Load()
	return ns
}

// requestHeartbeat propagates a downstream demand for ordering information
// toward the sources.
func (qn *queryNode) requestHeartbeat() {
	if qn.node != nil && qn.level == core.LevelLFTA {
		qn.m.Interface(ifaceName(qn.node)).requestHeartbeat()
		return
	}
	if qn.src != nil {
		qn.sourceHeartbeat()
		return
	}
	for _, sub := range qn.inputs {
		sub.RequestHeartbeat()
	}
}
