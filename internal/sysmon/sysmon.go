// Package sysmon is Gigascope's self-monitoring subsystem: it samples the
// run time system's own statistics — per-query-node operator counters,
// ring-buffer shedding, packet-interface and capture-stack drop placement —
// on the virtual clock and publishes the samples as first-class tuple
// streams (SYSMON.NodeStats, SYSMON.IfaceStats) registered in the schema
// catalog. Because the samples are ordinary streams with declared ordering
// properties, ordinary GSQL queries aggregate over them: the monitoring
// story the Gigascope paper tells (§5 — "we use Gigascope to monitor
// Gigascope") becomes `select tb, name, sum(ringDrop) from SYSMON.NodeStats
// group by time/10 as tb, name having sum(ringDrop) > 0`.
//
// Counter columns are delta-encoded per sampling interval, so sum() over
// any set of windows equals the counter movement across them, and sum()
// over the whole run equals the final totals reported by
// rts.Manager.Stats(). Each row also carries cumulative total* columns
// annotated increasing_in_group(name), usable by per-group reasoning.
package sysmon

import (
	"fmt"

	"gigascope/internal/exec"
	"gigascope/internal/rts"
	"gigascope/internal/schema"
)

// Stream names under which the samplers register in the catalog. GSQL
// queries read them with `FROM SYSMON.NodeStats` — the parser sees an
// interface-qualified name, and source resolution prefers a catalog stream
// registered under the compound name.
const (
	StreamNodeStats  = "SYSMON.NodeStats"
	StreamIfaceStats = "SYSMON.IfaceStats"
)

// DefaultIntervalUsec is the sampling interval used when Config leaves it
// zero: one second of virtual time.
const DefaultIntervalUsec = 1_000_000

// Provider supplies the statistics snapshots the samplers publish.
// *rts.Manager implements it.
type Provider interface {
	Stats() []rts.NodeStats
	IfaceStats() []rts.IfaceStats
}

// Config controls what Attach installs.
type Config struct {
	// IntervalUsec is the sampling period on the virtual clock;
	// DefaultIntervalUsec when zero.
	IntervalUsec uint64
}

// Attach registers the sysmon samplers as clock-driven source nodes on the
// manager. After it returns, SYSMON.NodeStats and SYSMON.IfaceStats are in
// the catalog and queries may read them.
func Attach(m *rts.Manager, cfg Config) error {
	interval := cfg.IntervalUsec
	if interval == 0 {
		interval = DefaultIntervalUsec
	}
	if err := m.AddSourceNode(StreamNodeStats, NewNodeSampler(m, interval)); err != nil {
		return fmt.Errorf("sysmon: %w", err)
	}
	if err := m.AddSourceNode(StreamIfaceStats, NewIfaceSampler(m, interval)); err != nil {
		return fmt.Errorf("sysmon: %w", err)
	}
	return nil
}

// RegisterSchemas enters the SYSMON stream schemas into a catalog without
// attaching samplers — for tools that only parse and explain queries.
// Attach does this implicitly through the manager.
func RegisterSchemas(cat *schema.Catalog) error {
	if err := cat.Register(NodeStatsSchema()); err != nil {
		return err
	}
	return cat.Register(IfaceStatsSchema())
}

// NodeStatsSchema returns the SYSMON.NodeStats tuple layout. Counter
// columns are per-interval deltas; total* columns are cumulative and
// increasing within each node name.
func NodeStatsSchema() *schema.Schema {
	inGroup := schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"name"}}
	return &schema.Schema{
		Name: StreamNodeStats,
		Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "ts", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "name", Type: schema.TString},
			{Name: "level", Type: schema.TString},
			// shard is 0 for unsharded nodes, i+1 for the i'th shard
			// instance of an RSS-sharded LFTA.
			{Name: "shard", Type: schema.TUint},
			{Name: "tuplesIn", Type: schema.TUint},
			{Name: "tuplesOut", Type: schema.TUint},
			{Name: "dropped", Type: schema.TUint},
			// reordered counts tuples emitted out of declared order to bound
			// buffering (merge MaxBuffer overflow) — disorder, not loss.
			{Name: "reordered", Type: schema.TUint},
			{Name: "evicted", Type: schema.TUint},
			{Name: "ringDrop", Type: schema.TUint},
			{Name: "packets", Type: schema.TUint},
			{Name: "badPkts", Type: schema.TUint},
			{Name: "orderViolations", Type: schema.TUint},
			{Name: "totalIn", Type: schema.TUint, Ordering: inGroup},
			{Name: "totalOut", Type: schema.TUint, Ordering: inGroup},
			{Name: "totalRingDrop", Type: schema.TUint, Ordering: inGroup},
			{Name: "totalPackets", Type: schema.TUint, Ordering: inGroup},
			// Batch-pipeline telemetry (delta-encoded like the other
			// counters): heartbeats discarded with shed batches, batches
			// published, tuples carried in them (batchTuples/batches =
			// mean ring-batch occupancy), and flush reasons.
			{Name: "hbDrop", Type: schema.TUint},
			{Name: "batches", Type: schema.TUint},
			{Name: "batchTuples", Type: schema.TUint},
			{Name: "flushSize", Type: schema.TUint},
			{Name: "flushHB", Type: schema.TUint},
			{Name: "flushWindow", Type: schema.TUint},
			// Quarantine telemetry: quarantined flags a node whose operator
			// panicked and is detached from its publisher; quarantines /
			// restarts / quarDrop / opErrors are delta-encoded like the
			// other counters; quarReason carries the last panic message.
			{Name: "quarantined", Type: schema.TBool},
			{Name: "quarantines", Type: schema.TUint},
			{Name: "restarts", Type: schema.TUint},
			{Name: "quarDrop", Type: schema.TUint},
			{Name: "opErrors", Type: schema.TUint},
			{Name: "quarReason", Type: schema.TString},
			// sharedBy counts the other queries this node also feeds after
			// shared-LFTA elimination (0 = unshared): the node's work is
			// amortized over sharedBy+1 queries.
			{Name: "sharedBy", Type: schema.TUint},
			// Remote-peer transport telemetry (wire-imported streams only;
			// empty/zero rows for local nodes): the connection state machine
			// state, plus delta-encoded reconnects, tuples known lost across
			// reconnects, gap punctuations injected, and heartbeat misses.
			{Name: "peerState", Type: schema.TString},
			{Name: "reconnects", Type: schema.TUint},
			{Name: "gapTuples", Type: schema.TUint},
			{Name: "gapEvents", Type: schema.TUint},
			{Name: "hbMisses", Type: schema.TUint},
		},
	}
}

// IfaceStatsSchema returns the SYSMON.IfaceStats tuple layout: one row per
// packet interface per interval, carrying interface counters and — when a
// capture stack or NIC is bound — the drop placement along the capture
// path.
func IfaceStatsSchema() *schema.Schema {
	inGroup := schema.Ordering{Kind: schema.OrderIncreasingInGroup, Group: []string{"name"}}
	return &schema.Schema{
		Name: StreamIfaceStats,
		Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "ts", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "name", Type: schema.TString},
			{Name: "clock", Type: schema.TUint, Ordering: inGroup},
			{Name: "lftas", Type: schema.TUint},
			// shards is the RSS shard count of the interface's capture
			// path (0 = unsharded inline execution).
			{Name: "shards", Type: schema.TUint},
			{Name: "packets", Type: schema.TUint},
			{Name: "offered", Type: schema.TUint},
			{Name: "heartbeats", Type: schema.TUint},
			{Name: "ringDrops", Type: schema.TUint},
			{Name: "nicOverrun", Type: schema.TUint},
			{Name: "nicFiltered", Type: schema.TUint},
			{Name: "livelocked", Type: schema.TBool},
			// Common-prefilter gate telemetry (paper §5): distinct terms
			// installed, term evaluations performed this interval, and
			// packet deliveries the gate skipped.
			{Name: "prefilterTerms", Type: schema.TUint},
			{Name: "prefilterEvals", Type: schema.TUint},
			{Name: "prefilterGated", Type: schema.TUint},
			{Name: "totalPackets", Type: schema.TUint, Ordering: inGroup},
			{Name: "totalOffered", Type: schema.TUint, Ordering: inGroup},
		},
	}
}

// delta returns cur-prev, clamping at zero so a counter reset (node
// replaced under the same name) yields 0 rather than wrapping.
func delta(cur, prev uint64) uint64 {
	if cur < prev {
		return 0
	}
	return cur - prev
}

// heartbeat emits an ordering update token: a lower bound of now on the
// stream's ts column (paper §3).
func heartbeat(out *schema.Schema, now uint64, emit exec.Emit) {
	bounds := make(schema.Tuple, len(out.Cols))
	bounds[0] = schema.MakeUint(now)
	emit(exec.HeartbeatMsg(bounds))
}

// NodeSampler publishes SYSMON.NodeStats: one row per query node per
// sampling interval, delta-encoded. It is an rts.SourceNode, driven by the
// manager's virtual clock; its publisher sheds on overload, so telemetry
// never back-pressures the capture path.
type NodeSampler struct {
	prov     Provider
	interval uint64
	out      *schema.Schema
	last     uint64
	prev     map[string]rts.NodeStats
	// stats is read by the monitoring snapshot (possibly our own sample
	// in flight), so the counters are atomic.
	stats exec.Counters
}

// NewNodeSampler builds a node-statistics sampler reading from prov every
// interval microseconds of virtual time.
func NewNodeSampler(prov Provider, interval uint64) *NodeSampler {
	if interval == 0 {
		interval = DefaultIntervalUsec
	}
	return &NodeSampler{
		prov:     prov,
		interval: interval,
		out:      NodeStatsSchema(),
		prev:     make(map[string]rts.NodeStats),
	}
}

// OutSchema implements rts.SourceNode.
func (s *NodeSampler) OutSchema() *schema.Schema { return s.out }

// Stats reports the sampler's own operator counters (it is itself a query
// node, so it appears in its own output stream).
func (s *NodeSampler) Stats() exec.OpStats { return s.stats.Snapshot() }

// Tick implements rts.SourceNode: sample when the interval has elapsed.
func (s *NodeSampler) Tick(nowUsec uint64, emit exec.Emit) {
	if nowUsec < s.last+s.interval {
		return
	}
	s.sample(nowUsec, emit)
}

// Heartbeat implements rts.SourceNode: answer an on-demand ordering token
// request at the current clock.
func (s *NodeSampler) Heartbeat(nowUsec uint64, emit exec.Emit) {
	if nowUsec == 0 {
		return
	}
	heartbeat(s.out, nowUsec, emit)
}

// Flush implements rts.SourceNode: emit one final sample at shutdown so
// the delta columns sum to the final counter totals.
func (s *NodeSampler) Flush(nowUsec uint64, emit exec.Emit) {
	if nowUsec < s.last {
		nowUsec = s.last
	}
	s.sample(nowUsec, emit)
}

func (s *NodeSampler) sample(nowUsec uint64, emit exec.Emit) {
	s.last = nowUsec
	s.stats.In.Add(1)
	for _, ns := range s.prov.Stats() {
		p := s.prev[ns.Name]
		row := schema.Tuple{
			schema.MakeUint(nowUsec),
			schema.MakeStr(ns.Name),
			schema.MakeStr(ns.Level.String()),
			schema.MakeUint(uint64(ns.Shard)),
			schema.MakeUint(delta(ns.Op.In, p.Op.In)),
			schema.MakeUint(delta(ns.Op.Out, p.Op.Out)),
			schema.MakeUint(delta(ns.Op.Dropped, p.Op.Dropped)),
			schema.MakeUint(delta(ns.Op.Reordered, p.Op.Reordered)),
			schema.MakeUint(delta(ns.Op.Evicted, p.Op.Evicted)),
			schema.MakeUint(delta(ns.RingDrop, p.RingDrop)),
			schema.MakeUint(delta(ns.Packets, p.Packets)),
			schema.MakeUint(delta(ns.BadPkts, p.BadPkts)),
			schema.MakeUint(delta(ns.OrderViolations, p.OrderViolations)),
			schema.MakeUint(ns.Op.In),
			schema.MakeUint(ns.Op.Out),
			schema.MakeUint(ns.RingDrop),
			schema.MakeUint(ns.Packets),
			schema.MakeUint(delta(ns.HBDrop, p.HBDrop)),
			schema.MakeUint(delta(ns.Batches, p.Batches)),
			schema.MakeUint(delta(ns.BatchTuples, p.BatchTuples)),
			schema.MakeUint(delta(ns.FlushSize, p.FlushSize)),
			schema.MakeUint(delta(ns.FlushHB, p.FlushHB)),
			schema.MakeUint(delta(ns.FlushWindow, p.FlushWindow)),
			schema.MakeBool(ns.Quarantined),
			schema.MakeUint(delta(ns.Quarantines, p.Quarantines)),
			schema.MakeUint(delta(ns.Restarts, p.Restarts)),
			schema.MakeUint(delta(ns.QuarDrop, p.QuarDrop)),
			schema.MakeUint(delta(ns.OpErrors, p.OpErrors)),
			schema.MakeStr(ns.QuarantineReason),
			schema.MakeUint(uint64(len(ns.SharedBy))),
			schema.MakeStr(ns.PeerState),
			schema.MakeUint(delta(ns.Reconnects, p.Reconnects)),
			schema.MakeUint(delta(ns.GapTuples, p.GapTuples)),
			schema.MakeUint(delta(ns.GapEvents, p.GapEvents)),
			schema.MakeUint(delta(ns.HBMisses, p.HBMisses)),
		}
		s.prev[ns.Name] = ns
		s.stats.Out.Add(1)
		emit(exec.TupleMsg(row))
	}
	heartbeat(s.out, nowUsec, emit)
}

// IfaceSampler publishes SYSMON.IfaceStats: one row per packet interface
// per sampling interval, delta-encoded, including capture-stack and NIC
// drop counters when those devices are bound.
type IfaceSampler struct {
	prov     Provider
	interval uint64
	out      *schema.Schema
	last     uint64
	prev     map[string]rts.IfaceStats
	stats    exec.Counters
}

// NewIfaceSampler builds an interface-statistics sampler reading from prov
// every interval microseconds of virtual time.
func NewIfaceSampler(prov Provider, interval uint64) *IfaceSampler {
	if interval == 0 {
		interval = DefaultIntervalUsec
	}
	return &IfaceSampler{
		prov:     prov,
		interval: interval,
		out:      IfaceStatsSchema(),
		prev:     make(map[string]rts.IfaceStats),
	}
}

// OutSchema implements rts.SourceNode.
func (s *IfaceSampler) OutSchema() *schema.Schema { return s.out }

// Stats reports the sampler's own operator counters.
func (s *IfaceSampler) Stats() exec.OpStats { return s.stats.Snapshot() }

// Tick implements rts.SourceNode.
func (s *IfaceSampler) Tick(nowUsec uint64, emit exec.Emit) {
	if nowUsec < s.last+s.interval {
		return
	}
	s.sample(nowUsec, emit)
}

// Heartbeat implements rts.SourceNode.
func (s *IfaceSampler) Heartbeat(nowUsec uint64, emit exec.Emit) {
	if nowUsec == 0 {
		return
	}
	heartbeat(s.out, nowUsec, emit)
}

// Flush implements rts.SourceNode.
func (s *IfaceSampler) Flush(nowUsec uint64, emit exec.Emit) {
	if nowUsec < s.last {
		nowUsec = s.last
	}
	s.sample(nowUsec, emit)
}

func (s *IfaceSampler) sample(nowUsec uint64, emit exec.Emit) {
	s.last = nowUsec
	s.stats.In.Add(1)
	for _, is := range s.prov.IfaceStats() {
		p := s.prev[is.Name]
		row := schema.Tuple{
			schema.MakeUint(nowUsec),
			schema.MakeStr(is.Name),
			schema.MakeUint(is.Clock),
			schema.MakeUint(uint64(is.LFTAs)),
			schema.MakeUint(uint64(is.Shards)),
			schema.MakeUint(delta(is.Packets, p.Packets)),
			schema.MakeUint(delta(is.Offered, p.Offered)),
			schema.MakeUint(delta(is.Heartbeats, p.Heartbeats)),
			schema.MakeUint(delta(is.Capture.RingDrops, p.Capture.RingDrops)),
			schema.MakeUint(delta(is.Capture.NICOverrun, p.Capture.NICOverrun)),
			schema.MakeUint(delta(is.Capture.NICFiltered+is.NICFiltered, p.Capture.NICFiltered+p.NICFiltered)),
			schema.MakeBool(is.Livelocked),
			schema.MakeUint(uint64(is.PrefilterTerms)),
			schema.MakeUint(delta(is.PrefilterEvals, p.PrefilterEvals)),
			schema.MakeUint(delta(is.PrefilterGated, p.PrefilterGated)),
			schema.MakeUint(is.Packets),
			schema.MakeUint(is.Offered),
		}
		s.prev[is.Name] = is
		s.stats.Out.Add(1)
		emit(exec.TupleMsg(row))
	}
	heartbeat(s.out, nowUsec, emit)
}
