package gigascope

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"gigascope/internal/core"
)

// TestSysmonAlertQuery is the self-monitoring acceptance path: an ordinary
// GSQL aggregation over SYSMON.NodeStats, compiled through the normal
// planner, raises ring-shed alerts whose drop counts match the manager's
// own totals — Gigascope monitoring Gigascope.
func TestSysmonAlertQuery(t *testing.T) {
	sys, err := New(Config{
		SelfMonitor:         true,
		ValidateOrdering:    true,
		MonitorIntervalUsec: 500_000,
	})
	if err != nil {
		t.Fatal(err)
	}

	sys.MustAddQuery(`
		DEFINE { query_name tcpdest; }
		SELECT destIP, destPort, time FROM eth0.TCP
		WHERE ipversion = 4 and protocol = 6`, nil)

	cq := sys.MustAddQuery(`
		DEFINE { query_name ringalert; }
		SELECT tb, name, sum(ringDrop) FROM SYSMON.NodeStats
		GROUP BY ts/1000000 as tb, name
		HAVING sum(ringDrop) > 0`, nil)
	for _, n := range cq.Nodes {
		if n.Level == core.LevelLFTA {
			t.Fatalf("telemetry query compiled an LFTA node %s; want HFTA-only", n.Name)
		}
	}

	// A slow subscriber on the LFTA's output ring: two slots, never read.
	// The selection query compiles to a single LFTA node, whose publisher
	// sheds (§4 tuple-value heuristic), so injections beyond the ring
	// capacity are counted as ring drops.
	if _, err := sys.Subscribe("tcpdest", 2); err != nil {
		t.Fatal(err)
	}
	alerts, err := sys.Subscribe("ringalert", 4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}

	// Consume concurrently so we can observe windows closing mid-stream:
	// the GROUP BY must unblock via the declared ts ordering (watermark
	// from sampler heartbeats), not only via the end-of-stream flush.
	summed := make(map[string]uint64)
	var mu sync.Mutex
	var alertRows int
	var preStop atomic.Int64
	var stopping atomic.Bool
	done := make(chan struct{})
	go func() {
		defer close(done)
		for b := range alerts.C {
			for _, m := range b {
				if m.IsHeartbeat() {
					continue
				}
				mu.Lock()
				alertRows++
				summed[m.Tuple[1].Str()] += m.Tuple[2].Uint()
				mu.Unlock()
				if !stopping.Load() {
					preStop.Add(1)
				}
			}
		}
	}()

	for i := 0; i < 400; i++ {
		ts := 1_000_000 + uint64(i)*10_000 // 4 s of virtual time
		p := BuildTCP(ts, TCPSpec{SrcIP: 0x0a000001, DstIP: 0x0a000002, DstPort: 80})
		sys.Inject("eth0", &p)
	}
	// By now the watermark has passed several one-second windows; their
	// alert groups must flush without waiting for the stream to end.
	deadline := time.Now().Add(5 * time.Second)
	for preStop.Load() == 0 && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	if preStop.Load() == 0 {
		t.Error("no alert before Stop: GROUP BY over SYSMON.NodeStats did not unblock mid-stream")
	}
	stopping.Store(true)
	sys.Stop()
	<-done

	if alertRows == 0 {
		t.Fatal("no alert tuples; expected ring shedding to raise at least one")
	}

	stats := sys.Stats()
	byName := make(map[string]uint64, len(stats))
	for _, ns := range stats {
		byName[ns.Name] = ns.RingDrop
		if ns.OrderViolations != 0 {
			t.Errorf("node %s: %d ordering violations", ns.Name, ns.OrderViolations)
		}
	}
	if byName["tcpdest"] == 0 {
		t.Fatal("LFTA reported no ring drops; the run did not force shedding")
	}
	for name, sum := range summed {
		if sum != byName[name] {
			t.Errorf("alerts for %s sum to %d drops; manager reports %d", name, sum, byName[name])
		}
	}
	if summed["tcpdest"] != byName["tcpdest"] {
		t.Errorf("LFTA alert total %d != Stats total %d", summed["tcpdest"], byName["tcpdest"])
	}
}

// TestSysmonRawStreams checks the raw telemetry subscriptions and the
// interface sampler: rows arrive on both SYSMON streams, timestamps are
// nondecreasing, and IfaceStats rows reflect the injected traffic.
func TestSysmonRawStreams(t *testing.T) {
	sys, err := New(Config{SelfMonitor: true, MonitorIntervalUsec: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	sys.MustAddQuery(`DEFINE { query_name q; } SELECT time FROM eth0.TCP`, nil)
	nodeSub, err := sys.SubscribeStats(4096)
	if err != nil {
		t.Fatal(err)
	}
	ifaceSub, err := sys.SubscribeIfaceStats(4096)
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		p := BuildTCP(1_000_000+uint64(i)*200_000, TCPSpec{DstPort: 80})
		sys.Inject("eth0", &p)
	}
	sys.Stop()

	var lastTS uint64
	var nodeRows int
	sawQ := false
	for b := range nodeSub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			nodeRows++
			if ts := m.Tuple[0].Uint(); ts < lastTS {
				t.Errorf("NodeStats ts went backwards: %d after %d", ts, lastTS)
			} else {
				lastTS = ts
			}
			if m.Tuple[1].Str() == "q" {
				sawQ = true
			}
		}
	}
	if nodeRows == 0 || !sawQ {
		t.Fatalf("NodeStats rows = %d, saw q = %v", nodeRows, sawQ)
	}

	// Resolve the column by name: the IfaceStats layout grows over time.
	ifaceSchema, ok := sys.Catalog().Lookup("SYSMON.IfaceStats")
	if !ok {
		t.Fatal("SYSMON.IfaceStats not in catalog")
	}
	tpCol, _ := ifaceSchema.Col("totalPackets")
	if tpCol < 0 {
		t.Fatal("SYSMON.IfaceStats has no totalPackets column")
	}
	var ifaceRows int
	var packets uint64
	for b := range ifaceSub.C {
		for _, m := range b {
			if m.IsHeartbeat() {
				continue
			}
			ifaceRows++
			if m.Tuple[1].Str() == "eth0" {
				packets = m.Tuple[tpCol].Uint()
			}
		}
	}
	if ifaceRows == 0 {
		t.Fatal("no IfaceStats rows")
	}
	if packets != 30 {
		t.Errorf("eth0 totalPackets = %d, want 30", packets)
	}
}
