package difftest

import (
	"testing"

	"gigascope"
	"gigascope/internal/oracle"
)

// TestDistributedMatrix runs seeded cases through every distributed cell:
// {64, 4096} batch x {2, 3, 4}-node topologies x columnar x faults, each
// compared against the naive oracle. Mismatches are minimized and written
// as replayable artifacts exactly like single-process failures — the
// artifact's Config.Distributed replays through the same topology preset.
func TestDistributedMatrix(t *testing.T) {
	seeds := []int64{1, 2}
	if testing.Short() {
		seeds = seeds[:1]
	}
	cells := 0
	for _, seed := range seeds {
		c, err := NewCase(seed, tracePackets)
		if err != nil {
			t.Fatalf("seed %d: generating case: %v", seed, err)
		}
		cache := map[bool]map[string]*oracle.Result{}
		for _, cfg := range DistributedMatrix() {
			cells++
			t.Run(cfg.Name()+"_seed"+itoa(seed), func(t *testing.T) {
				want, ok := cache[cfg.Faults]
				if !ok {
					var err error
					want, err = OracleResults(c, cfg.Faults)
					if err != nil {
						t.Fatalf("oracle: %v", err)
					}
					cache[cfg.Faults] = want
				}
				m, err := CheckConfig(c, cfg, want)
				if err != nil {
					t.Fatalf("harness: %v", err)
				}
				if m == nil {
					return
				}
				min := Minimize(c, cfg, DefaultMinimizeBudget)
				dir, werr := WriteArtifact("testdata/repros", min, cfg, m, nil)
				if werr != nil {
					t.Fatalf("mismatch (artifact write failed: %v): %s", werr, m)
				}
				t.Fatalf("%s\nminimized repro written to %s", m, dir)
			})
		}
	}
	if want := len(DistributedMatrix()) * len(seeds); cells != want {
		t.Fatalf("ran %d cells, want %d", cells, want)
	}
	if len(DistributedMatrix()) < 24 {
		t.Fatalf("distributed matrix has %d cells, want >= 24", len(DistributedMatrix()))
	}
	t.Logf("checked %d distributed (case, config) cells", cells)
}

// TestDistTopologyPresetsParse pins that every preset is valid topology
// source and has the advertised shape.
func TestDistTopologyPresetsParse(t *testing.T) {
	for _, n := range []int{2, 3, 4} {
		src, err := DistTopology(n)
		if err != nil {
			t.Fatal(err)
		}
		topo, err := gigascope.ParseTopology(src)
		if err != nil {
			t.Fatalf("%d-node preset does not parse: %v", n, err)
		}
		if len(topo.Nodes) != n {
			t.Errorf("%d-node preset has %d nodes", n, len(topo.Nodes))
		}
		if topo.Sink() == nil || len(topo.Sink().Captures) != 0 {
			t.Errorf("%d-node preset sink should be capture-free", n)
		}
	}
	if _, err := DistTopology(7); err == nil {
		t.Error("unknown preset size should error")
	}
}
