package gsql

import "testing"

func BenchmarkParseQuery(b *testing.B) {
	const src = `
		DEFINE { query_name q; }
		SELECT tb, destPort, count(*), sum(len)
		FROM eth0.tcp
		WHERE ipversion = 4 and protocol = 6 and destPort = 80
		GROUP BY time/60 as tb, destPort
		HAVING count(*) > 100`
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ParseQuery(src); err != nil {
			b.Fatal(err)
		}
	}
}
