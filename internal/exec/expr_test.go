package exec

import (
	"strings"
	"testing"

	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// testInSchema is a small stream schema used across the exec tests.
func testInSchema() *schema.Schema {
	return &schema.Schema{
		Name: "s",
		Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint, Ordering: schema.Ordering{Kind: schema.OrderIncreasing}},
			{Name: "srcIP", Type: schema.TIP},
			{Name: "destPort", Type: schema.TUint},
			{Name: "len", Type: schema.TUint},
			{Name: "payload", Type: schema.TString},
			{Name: "delta", Type: schema.TInt},
			{Name: "ratio", Type: schema.TFloat},
		},
	}
}

func testRow() schema.Tuple {
	return schema.Tuple{
		schema.MakeUint(120),
		schema.MakeIP(0x0a000001),
		schema.MakeUint(80),
		schema.MakeUint(1500),
		schema.MakeStr("GET / HTTP/1.1\r\n"),
		schema.MakeInt(-3),
		schema.MakeFloat(0.5),
	}
}

// compileExpr compiles the expression text (as it would appear in a WHERE
// clause) against testInSchema.
func compileExpr(t *testing.T, src string, params map[string]schema.Type) (Expr, *Compiler) {
	t.Helper()
	q, err := gsql.ParseQuery("SELECT time FROM s WHERE " + src)
	if err != nil {
		t.Fatalf("parse %q: %v", src, err)
	}
	c := &Compiler{Reg: funcs.Global, Params: params, Resolve: SchemaResolver(testInSchema(), "s")}
	e, err := c.Compile(q.Where)
	if err != nil {
		t.Fatalf("compile %q: %v", src, err)
	}
	return e, c
}

func evalBool(t *testing.T, src string, row schema.Tuple) bool {
	t.Helper()
	e, c := compileExpr(t, src, nil)
	ctx, err := NewCtx(c.Handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := e.Eval(row, ctx)
	if !ok {
		t.Fatalf("eval %q: discarded", src)
	}
	if v.IsNull() {
		t.Fatalf("eval %q: NULL", src)
	}
	return v.Bool()
}

func TestExprComparisonsAndLogic(t *testing.T) {
	row := testRow()
	cases := map[string]bool{
		"destPort = 80":                                 true,
		"destPort <> 80":                                false,
		"destPort != 443":                               true,
		"len > 1000 and destPort = 80":                  true,
		"len > 2000 or destPort = 80":                   true,
		"len > 2000 and destPort = 80":                  false,
		"not (destPort = 80)":                           false,
		"srcIP = 10.0.0.1":                              true,
		"srcIP >= 10.0.0.0 and srcIP <= 10.255.255.255": true,
		"delta < 0":                                     true,
		"ratio < 1":                                     true,
		"time/60 = 2":                                   true,
		"len % 100 = 0":                                 true,
		"len & 4 = 4":                                   true,
		"(len >> 2) = 375":                              true,
		"time + 60 = 180":                               true,
		"time - 20 = 100":                               true,
		"2 * time = 240":                                true,
		"delta + 3 = 0":                                 true,
	}
	for src, want := range cases {
		if got := evalBool(t, src, row); got != want {
			t.Errorf("%q = %v, want %v", src, got, want)
		}
	}
}

func TestExprArithmeticTypes(t *testing.T) {
	e, c := compileExpr(t, "time/60 = 2", nil)
	_ = e
	if len(c.Handles) != 0 {
		t.Errorf("unexpected handles: %v", c.Handles)
	}
	// uint/uint stays uint (integer division).
	q, _ := gsql.ParseQuery("SELECT time/60 AS tb FROM s")
	cc := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(testInSchema(), "s")}
	te, err := cc.Compile(q.Select[0].Expr)
	if err != nil {
		t.Fatal(err)
	}
	if te.Type() != schema.TUint {
		t.Errorf("time/60 type = %s", te.Type())
	}
	v, _ := te.Eval(testRow(), nil)
	if v.Uint() != 2 {
		t.Errorf("time/60 = %v", v)
	}
	// Mixed with float promotes.
	q2, _ := gsql.ParseQuery("SELECT ratio * len FROM s")
	fe, err := cc.Compile(q2.Select[0].Expr)
	if err != nil {
		t.Fatal(err)
	}
	if fe.Type() != schema.TFloat {
		t.Errorf("ratio*len type = %s", fe.Type())
	}
	if v, _ := fe.Eval(testRow(), nil); v.Float() != 750 {
		t.Errorf("ratio*len = %v", v)
	}
}

func TestExprDivisionByZeroYieldsNull(t *testing.T) {
	q, _ := gsql.ParseQuery("SELECT len/(destPort-80) FROM s")
	cc := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(testInSchema(), "s")}
	e, err := cc.Compile(q.Select[0].Expr)
	if err != nil {
		t.Fatal(err)
	}
	v, ok := e.Eval(testRow(), nil)
	if !ok || !v.IsNull() {
		t.Errorf("division by zero = %v, %v; want NULL", v, ok)
	}
}

func TestExprNullPropagation(t *testing.T) {
	// A row of NULLs (heartbeat bounds with no information) must evaluate
	// without panicking and produce NULL.
	nullRow := make(schema.Tuple, len(testInSchema().Cols))
	for _, src := range []string{"destPort = 80", "time/60 = 2", "len > 0 and destPort = 80"} {
		e, _ := compileExpr(t, src, nil)
		v, ok := e.Eval(nullRow, nil)
		if !ok || !v.IsNull() {
			t.Errorf("%q over NULL row = %v, %v; want NULL", src, v, ok)
		}
	}
	// Short-circuit: FALSE AND NULL is FALSE; TRUE OR NULL is TRUE.
	row := testRow()
	row[0] = schema.Null // time is NULL
	e, _ := compileExpr(t, "destPort = 443 and time > 0", nil)
	if v, ok := e.Eval(row, nil); !ok || v.IsNull() || v.Bool() {
		t.Errorf("FALSE AND NULL = %v", v)
	}
	e2, _ := compileExpr(t, "destPort = 80 or time > 0", nil)
	if v, ok := e2.Eval(row, nil); !ok || v.IsNull() || !v.Bool() {
		t.Errorf("TRUE OR NULL = %v", v)
	}
}

func TestExprParams(t *testing.T) {
	e, c := compileExpr(t, "destPort = $port", map[string]schema.Type{"port": schema.TUint})
	ctx, err := NewCtx(c.Handles, map[string]schema.Value{"port": schema.MakeUint(80)})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Eval(testRow(), ctx); !v.Bool() {
		t.Error("param comparison failed")
	}
	// Changing the parameter on the fly changes the result.
	ctx.Params["port"] = schema.MakeUint(443)
	if v, _ := e.Eval(testRow(), ctx); v.Bool() {
		t.Error("param change not picked up")
	}
	// Undeclared parameter is a compile error.
	q, _ := gsql.ParseQuery("SELECT time FROM s WHERE destPort = $nope")
	cc := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(testInSchema(), "s")}
	if _, err := cc.Compile(q.Where); err == nil {
		t.Error("undeclared param accepted")
	}
}

func TestExprRegexHandle(t *testing.T) {
	e, c := compileExpr(t, `str_regex_match(payload, '^[^\n]*HTTP/1.*')`, nil)
	if len(c.Handles) != 1 {
		t.Fatalf("handles = %v", c.Handles)
	}
	ctx, err := NewCtx(c.Handles, nil)
	if err != nil {
		t.Fatal(err)
	}
	if v, ok := e.Eval(testRow(), ctx); !ok || !v.Bool() {
		t.Errorf("regex on HTTP payload = %v, %v", v, ok)
	}
	row := testRow()
	row[4] = schema.MakeStr("ssh-2.0 tunneled")
	if v, _ := e.Eval(row, ctx); v.Bool() {
		t.Error("regex matched non-HTTP payload")
	}
}

func TestExprHandleFromParam(t *testing.T) {
	e, c := compileExpr(t, `str_regex_match(payload, $pat)`,
		map[string]schema.Type{"pat": schema.TString})
	ctx, err := NewCtx(c.Handles, map[string]schema.Value{"pat": schema.MakeStr("^GET")})
	if err != nil {
		t.Fatal(err)
	}
	if v, _ := e.Eval(testRow(), ctx); !v.Bool() {
		t.Error("param-handle regex failed")
	}
	// Missing parameter binding surfaces at instantiation.
	if _, err := NewCtx(c.Handles, nil); err == nil {
		t.Error("NewCtx without param binding succeeded")
	}
}

func TestExprHandleMustBeLiteralOrParam(t *testing.T) {
	q, _ := gsql.ParseQuery("SELECT time FROM s WHERE str_regex_match(payload, payload)")
	c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(testInSchema(), "s")}
	if _, err := c.Compile(q.Where); err == nil {
		t.Error("column as pass-by-handle argument accepted")
	}
}

func TestExprCompileErrors(t *testing.T) {
	bad := []string{
		"nosuchcol = 1",
		"other.time = 1",
		"nosuchfunc(time)",
		"count(time) = 1", // aggregate in scalar position
		"payload + 1 = 2",
		"time and destPort",
		"not time",
		"payload = 1",
		"str_len(time) = 1",
		"str_len(payload, payload) = 1",
		"ratio & 1 = 1",
	}
	for _, src := range bad {
		q, err := gsql.ParseQuery("SELECT time FROM s WHERE " + src)
		if err != nil {
			t.Fatalf("parse %q: %v", src, err)
		}
		c := &Compiler{Reg: funcs.Global, Resolve: SchemaResolver(testInSchema(), "s")}
		if _, err := c.Compile(q.Where); err == nil {
			t.Errorf("compile %q succeeded", src)
		}
	}
}

func TestJoinResolver(t *testing.T) {
	left := testInSchema()
	right := &schema.Schema{
		Name: "r", Kind: schema.KindStream,
		Cols: []schema.Column{
			{Name: "time", Type: schema.TUint},
			{Name: "peer", Type: schema.TUint},
		},
	}
	res := JoinResolver(left, right, "L", "R")
	if i, ty, err := res("L", "time"); err != nil || i != 0 || ty != schema.TUint {
		t.Errorf("L.time = %d, %s, %v", i, ty, err)
	}
	if i, _, err := res("R", "time"); err != nil || i != len(left.Cols) {
		t.Errorf("R.time = %d, %v", i, err)
	}
	if i, _, err := res("", "peer"); err != nil || i != len(left.Cols)+1 {
		t.Errorf("peer = %d, %v", i, err)
	}
	if _, _, err := res("", "time"); err == nil || !strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous time: %v", err)
	}
	if _, _, err := res("X", "time"); err == nil {
		t.Error("unknown qualifier accepted")
	}
	if _, _, err := res("", "ghost"); err == nil {
		t.Error("unknown column accepted")
	}
}

func TestEvalPred(t *testing.T) {
	e, _ := compileExpr(t, "destPort = 80", nil)
	if pass, ok := EvalPred(e, testRow(), nil); !ok || !pass {
		t.Error("EvalPred true case failed")
	}
	nullRow := make(schema.Tuple, len(testInSchema().Cols))
	if pass, ok := EvalPred(e, nullRow, nil); !ok || pass {
		t.Error("EvalPred over NULL should be not-pass")
	}
}
