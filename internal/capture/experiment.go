package capture

import (
	"fmt"
	"regexp"

	"gigascope/internal/netsim"
	"gigascope/internal/pkt"
)

// The §4 experiment: "compute the fraction of port 80 traffic which is
// due to the HTTP protocol ... by comparing a count of all packets on
// port 80 with a count of packets on port 80 whose data payload matches
// the regular expression ^[^\n]*HTTP/1.*". 60 Mbit/s of port 80 traffic
// plus background traffic to vary the total rate; 2% loss is the maximum
// acceptable.

// Workload describes the §4 traffic mix.
type Workload struct {
	Port80Mbps     float64 // the fixed port-80 component (paper: 60)
	BackgroundMbps float64 // swept to vary total offered load
	HTTPFraction   float64 // fraction of port-80 packets that are HTTP
	PktBytes       int     // frame size
	Seed           int64
}

// DefaultWorkload returns the paper's §4 mix.
func DefaultWorkload(backgroundMbps float64) Workload {
	return Workload{
		Port80Mbps:     60,
		BackgroundMbps: backgroundMbps,
		HTTPFraction:   0.6,
		PktBytes:       1000,
		Seed:           42,
	}
}

// TotalMbps returns the offered load.
func (w Workload) TotalMbps() float64 { return w.Port80Mbps + w.BackgroundMbps }

func (w Workload) generator() (*netsim.Generator, error) {
	classes := []netsim.Class{{
		Name: "port80", RateMbps: w.Port80Mbps, PktBytes: w.PktBytes,
		DstPort: 80, Proto: pkt.ProtoTCP,
		Payload: netsim.PayloadHTTP, HTTPFraction: w.HTTPFraction,
		Flows: 512,
	}}
	if w.BackgroundMbps > 0 {
		classes = append(classes, netsim.Class{
			Name: "background", RateMbps: w.BackgroundMbps, PktBytes: w.PktBytes,
			DstPort: 9000, Proto: pkt.ProtoTCP, Payload: netsim.PayloadRandom,
			Flows: 512,
		})
	}
	return netsim.New(netsim.Config{Seed: w.Seed, Classes: classes})
}

// HTTPPipeline is the §4 query pipeline with the default (reference)
// filter: LFTA keeps TCP port-80 packets; HFTA runs the paper's regex
// over the payload. RunConfiguration accepts custom pipelines so the
// benchmarks can wire in the real compiled LFTA instead.
func HTTPPipeline() Pipeline {
	return Pipeline{
		Filter: func(p *pkt.Packet) bool {
			proto, ok := p.IPProto()
			if !ok || proto != pkt.ProtoTCP {
				return false
			}
			port, ok := p.U16(pkt.EthHeaderLen + pkt.IPv4HeaderLen + 2)
			return ok && port == 80
		},
		HFTABytes: func(p *pkt.Packet) int {
			pay, ok := p.Payload()
			if !ok {
				return 0
			}
			return len(pay)
		},
	}
}

// HTTPRegex is the paper's detection pattern.
var HTTPRegex = regexp.MustCompile(`^[^\n]*HTTP/1.*`)

// RunConfiguration simulates one §4 configuration for the given virtual
// duration and returns the stack statistics.
func RunConfiguration(mode Mode, par Params, w Workload, pipe Pipeline, seconds float64) (Stats, error) {
	gen, err := w.generator()
	if err != nil {
		return Stats{}, err
	}
	st, err := NewStack(mode, par, pipe, w.Seed)
	if err != nil {
		return Stats{}, err
	}
	gen.Until(uint64(seconds*1e6), st.Arrive)
	return st.Stats(), nil
}

// MaxSustainableRate finds the highest total offered load (Mbit/s) a
// configuration sustains with loss <= lossTarget, by bisection over the
// background rate. It returns the total rate (port 80 + background).
func MaxSustainableRate(mode Mode, par Params, pipe Pipeline, lossTarget, seconds float64) (float64, error) {
	lossAt := func(total float64) (float64, error) {
		bg := total - 60
		if bg < 0 {
			bg = 0
		}
		stats, err := RunConfiguration(mode, par, DefaultWorkload(bg), pipe, seconds)
		if err != nil {
			return 0, err
		}
		return stats.LossRate(), nil
	}
	lo, hi := 60.0, 60.0
	// Grow until loss exceeds the target (or an absurd rate is reached).
	for hi < 4000 {
		loss, err := lossAt(hi)
		if err != nil {
			return 0, err
		}
		if loss > lossTarget {
			break
		}
		lo = hi
		hi *= 1.5
	}
	if hi >= 4000 {
		return hi, nil
	}
	for i := 0; i < 20 && hi-lo > 2; i++ {
		mid := (lo + hi) / 2
		loss, err := lossAt(mid)
		if err != nil {
			return 0, err
		}
		if loss > lossTarget {
			hi = mid
		} else {
			lo = mid
		}
	}
	return lo, nil
}

// ConfigurationName returns the paper's label for a mode.
func ConfigurationName(mode Mode) string {
	switch mode {
	case ModeDiskDump:
		return "1) dump to disk"
	case ModePcapDiscard:
		return "2) libpcap read+discard"
	case ModeHostLFTA:
		return "3) Gigascope, LFTAs on host"
	case ModeNICLFTA:
		return "4) Gigascope, LFTAs on NIC"
	}
	return fmt.Sprintf("mode %d", mode)
}
