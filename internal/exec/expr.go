package exec

import (
	"fmt"

	"gigascope/internal/funcs"
	"gigascope/internal/gsql"
	"gigascope/internal/schema"
)

// Ctx is the per-query-instance evaluation context: bound parameter values
// and prepared pass-by-handle function arguments.
type Ctx struct {
	Params  map[string]schema.Value
	Handles []funcs.Handle
}

// Expr is a compiled expression. Eval returns the value and true, or false
// to discard the tuple (a partial function produced no result, paper §2.2).
// Evaluation over NULL inputs yields NULL, which lets heartbeats propagate
// bounds through monotone expressions.
type Expr interface {
	Type() schema.Type
	Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool)
}

// HandleSpec records a pass-by-handle argument discovered at compile time.
// The handle is built at instantiation from a literal, or from a query
// parameter (and rebuilt when the parameter changes on the fly).
type HandleSpec struct {
	Func  *funcs.Scalar
	Value schema.Value // literal argument, or
	Param string       // parameter name when non-empty
}

// Compiler compiles GSQL AST expressions against an input schema.
type Compiler struct {
	Reg    *funcs.Registry
	Params map[string]schema.Type
	// Resolve maps a (qualifier, column) reference to a row index and
	// type. Qualifier is "" for unqualified references.
	Resolve func(table, name string) (int, schema.Type, error)
	// Handles accumulates pass-by-handle specs across all expressions
	// compiled by this compiler; slot indexes refer into Ctx.Handles.
	Handles []HandleSpec
}

// NewCtx builds an evaluation context: binds params and prepares handles.
func NewCtx(specs []HandleSpec, params map[string]schema.Value) (*Ctx, error) {
	ctx := &Ctx{Params: params, Handles: make([]funcs.Handle, len(specs))}
	for i, hs := range specs {
		v := hs.Value
		if hs.Param != "" {
			pv, ok := params[hs.Param]
			if !ok {
				return nil, fmt.Errorf("exec: handle argument references unbound parameter $%s", hs.Param)
			}
			v = pv
		}
		h, err := hs.Func.MakeHandle(v)
		if err != nil {
			return nil, fmt.Errorf("exec: preparing handle for %s: %w", hs.Func.Name, err)
		}
		ctx.Handles[i] = h
	}
	return ctx, nil
}

// Rebind replaces the parameter bindings and rebuilds every handle that
// depends on a parameter. It implements the paper's on-the-fly query
// parameter changes (§3); the caller must ensure no concurrent evaluation.
func (ctx *Ctx) Rebind(specs []HandleSpec, params map[string]schema.Value) error {
	fresh, err := NewCtx(specs, params)
	if err != nil {
		return err
	}
	ctx.Params = fresh.Params
	ctx.Handles = fresh.Handles
	return nil
}

// Compile builds an evaluator for e.
func (c *Compiler) Compile(e gsql.Expr) (Expr, error) {
	switch n := e.(type) {
	case *gsql.Const:
		return constExpr{v: n.Val}, nil
	case *gsql.ColRef:
		idx, ty, err := c.Resolve(n.Table, n.Name)
		if err != nil {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: err.Error()}
		}
		return colExpr{idx: idx, ty: ty}, nil
	case *gsql.ParamRef:
		ty, ok := c.Params[n.Name]
		if !ok {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("undeclared parameter $%s (add 'param %s <type>' to the DEFINE block)", n.Name, n.Name)}
		}
		return paramExpr{name: n.Name, ty: ty}, nil
	case *gsql.UnaryExpr:
		return c.compileUnary(n)
	case *gsql.BinaryExpr:
		return c.compileBinary(n)
	case *gsql.FuncCall:
		return c.compileCall(n)
	case *gsql.Star:
		return nil, &gsql.Error{Pos: n.Pos(), Msg: "'*' is only valid in count(*)"}
	}
	return nil, fmt.Errorf("exec: unknown expression node %T", e)
}

type constExpr struct{ v schema.Value }

func (e constExpr) Type() schema.Type { return e.v.Type }
func (e constExpr) Eval(schema.Tuple, *Ctx) (schema.Value, bool) {
	return e.v, true
}

type colExpr struct {
	idx int
	ty  schema.Type
}

func (e colExpr) Type() schema.Type { return e.ty }
func (e colExpr) Eval(row schema.Tuple, _ *Ctx) (schema.Value, bool) {
	if e.idx >= len(row) {
		return schema.Null, true
	}
	return row[e.idx], true
}

type paramExpr struct {
	name string
	ty   schema.Type
}

func (e paramExpr) Type() schema.Type { return e.ty }
func (e paramExpr) Eval(_ schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	if ctx == nil {
		return schema.Null, true
	}
	v, ok := ctx.Params[e.name]
	if !ok {
		return schema.Null, true
	}
	return v, true
}

func (c *Compiler) compileUnary(n *gsql.UnaryExpr) (Expr, error) {
	x, err := c.Compile(n.X)
	if err != nil {
		return nil, err
	}
	switch n.Op {
	case gsql.OpNot:
		if x.Type() != schema.TBool {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("NOT needs a boolean operand, got %s", x.Type())}
		}
		return notExpr{x: x}, nil
	case gsql.OpNeg:
		if !x.Type().Numeric() {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("unary '-' needs a numeric operand, got %s", x.Type())}
		}
		return negExpr{x: x, ty: signedType(x.Type())}, nil
	case gsql.OpBitNot:
		if x.Type() != schema.TUint && x.Type() != schema.TInt {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("'~' needs an integer operand, got %s", x.Type())}
		}
		return bitNotExpr{x: x}, nil
	}
	return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("unsupported unary operator %s", n.Op)}
}

func signedType(t schema.Type) schema.Type {
	if t == schema.TFloat {
		return schema.TFloat
	}
	return schema.TInt
}

type notExpr struct{ x Expr }

func (e notExpr) Type() schema.Type { return schema.TBool }
func (e notExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	v, ok := e.x.Eval(row, ctx)
	if !ok || v.IsNull() {
		return schema.Null, ok
	}
	return schema.MakeBool(!v.Bool()), true
}

type negExpr struct {
	x  Expr
	ty schema.Type
}

func (e negExpr) Type() schema.Type { return e.ty }
func (e negExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	v, ok := e.x.Eval(row, ctx)
	if !ok || v.IsNull() {
		return schema.Null, ok
	}
	if e.ty == schema.TFloat {
		return schema.MakeFloat(-v.Float()), true
	}
	return schema.MakeInt(-v.Int()), true
}

type bitNotExpr struct{ x Expr }

func (e bitNotExpr) Type() schema.Type { return schema.TUint }
func (e bitNotExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	v, ok := e.x.Eval(row, ctx)
	if !ok || v.IsNull() {
		return schema.Null, ok
	}
	return schema.MakeUint(^v.Uint()), true
}

func (c *Compiler) compileBinary(n *gsql.BinaryExpr) (Expr, error) {
	l, err := c.Compile(n.L)
	if err != nil {
		return nil, err
	}
	r, err := c.Compile(n.R)
	if err != nil {
		return nil, err
	}
	switch {
	case n.Op == gsql.OpAnd || n.Op == gsql.OpOr:
		if l.Type() != schema.TBool || r.Type() != schema.TBool {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("%s needs boolean operands, got %s and %s", n.Op, l.Type(), r.Type())}
		}
		return boolExpr{op: n.Op, l: l, r: r}, nil
	case n.Op.Comparison():
		if !comparable(l.Type(), r.Type()) {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("cannot compare %s with %s", l.Type(), r.Type())}
		}
		return cmpExpr{op: n.Op, l: l, r: r}, nil
	default:
		ty, err := arithType(n.Op, l.Type(), r.Type())
		if err != nil {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: err.Error()}
		}
		return arithExpr{op: n.Op, l: l, r: r, ty: ty}, nil
	}
}

func comparable(a, b schema.Type) bool {
	if a == b {
		return true
	}
	if a.Numeric() && b.Numeric() {
		return true
	}
	// IPs compare with uints (e.g. masked arithmetic results).
	if (a == schema.TIP || b == schema.TIP) && (a == schema.TUint || b == schema.TUint) {
		return true
	}
	return false
}

// arithType computes the result type of an arithmetic/bitwise operation.
// IP addresses behave as uints under arithmetic (masking).
func arithType(op gsql.Op, a, b schema.Type) (schema.Type, error) {
	norm := func(t schema.Type) schema.Type {
		if t == schema.TIP {
			return schema.TUint
		}
		return t
	}
	a, b = norm(a), norm(b)
	if !a.Numeric() || !b.Numeric() {
		return schema.TNull, fmt.Errorf("operator %s needs numeric operands, got %s and %s", op, a, b)
	}
	switch op {
	case gsql.OpBitAnd, gsql.OpBitOr, gsql.OpBitXor, gsql.OpShl, gsql.OpShr, gsql.OpMod:
		if a == schema.TFloat || b == schema.TFloat {
			return schema.TNull, fmt.Errorf("operator %s needs integer operands", op)
		}
	}
	switch {
	case a == schema.TFloat || b == schema.TFloat:
		return schema.TFloat, nil
	case a == schema.TInt || b == schema.TInt:
		return schema.TInt, nil
	default:
		return schema.TUint, nil
	}
}

type boolExpr struct {
	op   gsql.Op
	l, r Expr
}

func (e boolExpr) Type() schema.Type { return schema.TBool }
func (e boolExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	lv, ok := e.l.Eval(row, ctx)
	if !ok {
		return schema.Null, false
	}
	// Short-circuit on known outcomes even with a NULL other side.
	if !lv.IsNull() {
		if e.op == gsql.OpAnd && !lv.Bool() {
			return schema.MakeBool(false), true
		}
		if e.op == gsql.OpOr && lv.Bool() {
			return schema.MakeBool(true), true
		}
	}
	rv, ok := e.r.Eval(row, ctx)
	if !ok {
		return schema.Null, false
	}
	if lv.IsNull() || rv.IsNull() {
		return schema.Null, true
	}
	if e.op == gsql.OpAnd {
		return schema.MakeBool(lv.Bool() && rv.Bool()), true
	}
	return schema.MakeBool(lv.Bool() || rv.Bool()), true
}

type cmpExpr struct {
	op   gsql.Op
	l, r Expr
}

func (e cmpExpr) Type() schema.Type { return schema.TBool }
func (e cmpExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	lv, ok := e.l.Eval(row, ctx)
	if !ok {
		return schema.Null, false
	}
	rv, ok := e.r.Eval(row, ctx)
	if !ok {
		return schema.Null, false
	}
	if lv.IsNull() || rv.IsNull() {
		return schema.Null, true
	}
	c := lv.Compare(rv)
	var b bool
	switch e.op {
	case gsql.OpEq:
		b = c == 0
	case gsql.OpNe:
		b = c != 0
	case gsql.OpLt:
		b = c < 0
	case gsql.OpLe:
		b = c <= 0
	case gsql.OpGt:
		b = c > 0
	case gsql.OpGe:
		b = c >= 0
	}
	return schema.MakeBool(b), true
}

type arithExpr struct {
	op   gsql.Op
	l, r Expr
	ty   schema.Type
}

func (e arithExpr) Type() schema.Type { return e.ty }
func (e arithExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	lv, ok := e.l.Eval(row, ctx)
	if !ok {
		return schema.Null, false
	}
	rv, ok := e.r.Eval(row, ctx)
	if !ok {
		return schema.Null, false
	}
	if lv.IsNull() || rv.IsNull() {
		return schema.Null, true
	}
	if e.ty == schema.TFloat {
		a, b := lv.Float(), rv.Float()
		var f float64
		switch e.op {
		case gsql.OpAdd:
			f = a + b
		case gsql.OpSub:
			f = a - b
		case gsql.OpMul:
			f = a * b
		case gsql.OpDiv:
			if b == 0 {
				return schema.Null, true
			}
			f = a / b
		}
		return schema.MakeFloat(f), true
	}
	if e.ty == schema.TInt {
		a, b := lv.Int(), rv.Int()
		var i int64
		switch e.op {
		case gsql.OpAdd:
			i = a + b
		case gsql.OpSub:
			i = a - b
		case gsql.OpMul:
			i = a * b
		case gsql.OpDiv:
			if b == 0 {
				return schema.Null, true
			}
			i = a / b
		case gsql.OpMod:
			if b == 0 {
				return schema.Null, true
			}
			i = a % b
		case gsql.OpBitAnd:
			i = a & b
		case gsql.OpBitOr:
			i = a | b
		case gsql.OpBitXor:
			i = a ^ b
		case gsql.OpShl:
			i = a << uint(b)
		case gsql.OpShr:
			i = a >> uint(b)
		}
		return schema.MakeInt(i), true
	}
	a, b := lv.Uint(), rv.Uint()
	var u uint64
	switch e.op {
	case gsql.OpAdd:
		u = a + b
	case gsql.OpSub:
		u = a - b
	case gsql.OpMul:
		u = a * b
	case gsql.OpDiv:
		if b == 0 {
			return schema.Null, true
		}
		u = a / b
	case gsql.OpMod:
		if b == 0 {
			return schema.Null, true
		}
		u = a % b
	case gsql.OpBitAnd:
		u = a & b
	case gsql.OpBitOr:
		u = a | b
	case gsql.OpBitXor:
		u = a ^ b
	case gsql.OpShl:
		u = a << b
	case gsql.OpShr:
		u = a >> b
	}
	return schema.MakeUint(u), true
}

func (c *Compiler) compileCall(n *gsql.FuncCall) (Expr, error) {
	f, ok := c.Reg.Scalar(n.Name)
	if !ok {
		if c.Reg.IsAggregate(n.Name) {
			return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("aggregate %s is not allowed here", n.Name)}
		}
		return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("unknown function %s", n.Name)}
	}
	if len(n.Args) != len(f.Args) {
		return nil, &gsql.Error{Pos: n.Pos(), Msg: fmt.Sprintf("%s takes %d arguments, got %d", f.Name, len(f.Args), len(n.Args))}
	}
	call := &callExpr{fn: f, handleSlot: -1, args: make([]Expr, len(n.Args))}
	argTypes := make([]schema.Type, len(n.Args))
	for i, a := range n.Args {
		if i == f.HandleArg {
			// Pass-by-handle parameters must be literals or query
			// parameters (paper §2.2); record the spec and pass NULL at
			// eval time.
			spec := HandleSpec{Func: f}
			switch arg := a.(type) {
			case *gsql.Const:
				spec.Value = arg.Val
			case *gsql.ParamRef:
				if _, ok := c.Params[arg.Name]; !ok {
					return nil, &gsql.Error{Pos: arg.Pos(), Msg: fmt.Sprintf("undeclared parameter $%s", arg.Name)}
				}
				spec.Param = arg.Name
			default:
				return nil, &gsql.Error{Pos: a.Pos(), Msg: fmt.Sprintf("argument %d of %s is pass-by-handle and must be a literal or query parameter", i+1, f.Name)}
			}
			call.handleSlot = len(c.Handles)
			c.Handles = append(c.Handles, spec)
			call.args[i] = constExpr{v: schema.Null}
			argTypes[i] = f.Args[i]
			continue
		}
		ce, err := c.Compile(a)
		if err != nil {
			return nil, err
		}
		call.args[i] = ce
		argTypes[i] = ce.Type()
	}
	if err := f.CheckArgs(argTypes); err != nil {
		return nil, &gsql.Error{Pos: n.Pos(), Msg: err.Error()}
	}
	return call, nil
}

type callExpr struct {
	fn         *funcs.Scalar
	args       []Expr
	handleSlot int
}

func (e *callExpr) Type() schema.Type { return e.fn.Ret }
func (e *callExpr) Eval(row schema.Tuple, ctx *Ctx) (schema.Value, bool) {
	vals := make([]schema.Value, len(e.args))
	for i, a := range e.args {
		v, ok := a.Eval(row, ctx)
		if !ok {
			return schema.Null, false
		}
		if v.IsNull() && i != e.fn.HandleArg {
			// NULL argument: no result. For heartbeat bound propagation
			// this correctly yields "no bound" through opaque functions.
			return schema.Null, true
		}
		vals[i] = v
	}
	var h funcs.Handle
	if e.handleSlot >= 0 {
		if ctx == nil || e.handleSlot >= len(ctx.Handles) {
			return schema.Null, true
		}
		h = ctx.Handles[e.handleSlot]
	}
	return e.fn.Eval(vals, h)
}

// EvalPred evaluates a compiled predicate, treating NULL as false.
func EvalPred(e Expr, row schema.Tuple, ctx *Ctx) (bool, bool) {
	v, ok := e.Eval(row, ctx)
	if !ok {
		return false, false
	}
	return !v.IsNull() && v.Bool(), true
}
