package pkt

import (
	"bytes"
	"testing"
	"testing/quick"

	"gigascope/internal/schema"
)

func sampleTCP() Packet {
	return BuildTCP(5_000_000, TCPSpec{
		SrcIP: 0x0a000001, DstIP: 0xc0a80102,
		SrcPort: 49152, DstPort: 80,
		Seq: 1000, Ack: 2000, Flags: FlagACK | FlagPSH, Window: 65535,
		Payload: []byte("GET / HTTP/1.1\r\nHost: example\r\n\r\n"),
	})
}

func sampleUDP() Packet {
	return BuildUDP(7_250_000, UDPSpec{
		SrcIP: 0x0a000002, DstIP: 0x08080808,
		SrcPort: 5353, DstPort: 53,
		Payload: []byte{0xde, 0xad, 0xbe, 0xef},
	})
}

func TestBuildTCPStructure(t *testing.T) {
	p := sampleTCP()
	if err := Verify(&p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if !p.IsIPv4() {
		t.Error("IsIPv4 = false")
	}
	if proto, _ := p.IPProto(); proto != ProtoTCP {
		t.Errorf("proto = %d", proto)
	}
	if got, _ := p.U16(l4Base); got != 49152 {
		t.Errorf("src port = %d", got)
	}
	if got, _ := p.U16(l4Base + 2); got != 80 {
		t.Errorf("dst port = %d", got)
	}
	pay, ok := p.Payload()
	if !ok || !bytes.HasPrefix(pay, []byte("GET / HTTP/1.1")) {
		t.Errorf("payload = %q, %v", pay, ok)
	}
	if p.WireLen != len(p.Data) {
		t.Errorf("WireLen %d != len(Data) %d for unsnapped packet", p.WireLen, len(p.Data))
	}
}

func TestBuildUDPStructure(t *testing.T) {
	p := sampleUDP()
	if err := Verify(&p); err != nil {
		t.Fatalf("Verify: %v", err)
	}
	if proto, _ := p.IPProto(); proto != ProtoUDP {
		t.Errorf("proto = %d", proto)
	}
	if got, _ := p.U16(l4Base + 4); got != UDPHeaderLen+4 {
		t.Errorf("udp length = %d", got)
	}
	pay, ok := p.Payload()
	if !ok || !bytes.Equal(pay, []byte{0xde, 0xad, 0xbe, 0xef}) {
		t.Errorf("payload = %x, %v", pay, ok)
	}
}

func TestSnapTruncatesCapture(t *testing.T) {
	p := sampleTCP()
	s := p.Snap(40)
	if s.CapLen() != 40 {
		t.Errorf("CapLen = %d", s.CapLen())
	}
	if s.WireLen != p.WireLen {
		t.Error("Snap changed WireLen")
	}
	// Header fields still readable, payload not.
	if _, ok := s.U16(l4Base + 2); !ok {
		t.Error("dest port unreadable after 40-byte snap")
	}
	if _, ok := s.Payload(); ok {
		t.Error("payload readable after snap")
	}
	// Snap to a larger size is a no-op.
	if s2 := p.Snap(10_000); s2.CapLen() != p.CapLen() {
		t.Error("Snap enlarged capture")
	}
}

func TestInterpExtraction(t *testing.T) {
	p := sampleTCP()
	cases := []struct {
		fn   string
		want schema.Value
	}{
		{"get_time", schema.MakeUint(5)},
		{"get_timestamp", schema.MakeUint(5_000_000)},
		{"get_ip_version", schema.MakeUint(4)},
		{"get_hdr_length", schema.MakeUint(20)},
		{"get_protocol", schema.MakeUint(6)},
		{"get_src_ip", schema.MakeIP(0x0a000001)},
		{"get_dest_ip", schema.MakeIP(0xc0a80102)},
		{"get_src_port", schema.MakeUint(49152)},
		{"get_dest_port", schema.MakeUint(80)},
		{"get_seq_number", schema.MakeUint(1000)},
		{"get_ack_number", schema.MakeUint(2000)},
		{"get_tcp_flags", schema.MakeUint(FlagACK | FlagPSH)},
		{"get_window", schema.MakeUint(65535)},
		{"get_ttl", schema.MakeUint(64)},
		{"get_caplen", schema.MakeUint(uint64(p.CapLen()))},
		{"get_wirelen", schema.MakeUint(uint64(p.WireLen))},
		{"get_payload_length", schema.MakeUint(33)},
	}
	for _, c := range cases {
		f, ok := LookupInterp(c.fn)
		if !ok {
			t.Fatalf("interp %s not registered", c.fn)
		}
		got, ok := f.Extract(&p)
		if !ok || !got.Equal(c.want) {
			t.Errorf("%s = %v, %v; want %v", c.fn, got, ok, c.want)
		}
	}
}

func TestInterpPayload(t *testing.T) {
	p := sampleTCP()
	f, _ := LookupInterp("get_payload")
	v, ok := f.Extract(&p)
	if !ok || !bytes.HasPrefix(v.Bytes(), []byte("GET /")) {
		t.Errorf("get_payload = %v, %v", v, ok)
	}
	if !f.NeedAll {
		t.Error("get_payload.NeedAll = false")
	}
}

func TestInterpFailsOnSnappedCapture(t *testing.T) {
	full := sampleTCP()
	p := full.Snap(20) // only Ethernet + 6 bytes of IP
	for _, fn := range []string{"get_src_ip", "get_dest_port", "get_payload"} {
		f, _ := LookupInterp(fn)
		if _, ok := f.Extract(&p); ok {
			t.Errorf("%s succeeded on 20-byte capture", fn)
		}
	}
	// Metadata still works.
	f, _ := LookupInterp("get_time")
	if _, ok := f.Extract(&p); !ok {
		t.Error("get_time failed on snapped capture")
	}
}

func TestRawRefMatchesExtract(t *testing.T) {
	// For every interp with a raw ref, the raw read must agree with the
	// extractor on option-free IPv4 frames.
	pkts := []Packet{sampleTCP(), sampleUDP()}
	for _, name := range InterpNames() {
		f, _ := LookupInterp(name)
		if f.Raw == nil {
			continue
		}
		for _, p := range pkts {
			want, ok1 := f.Extract(&p)
			raw, ok2 := f.Raw.Read(&p)
			if ok1 != ok2 {
				t.Errorf("%s: extract ok=%v raw ok=%v", name, ok1, ok2)
				continue
			}
			if ok1 && want.Uint() != raw {
				t.Errorf("%s: extract=%d raw=%d", name, want.Uint(), raw)
			}
		}
	}
}

func TestVerifyRejectsCorruption(t *testing.T) {
	p := sampleTCP()
	p.Data[ipOff+8]++ // flip TTL; IP checksum now wrong
	if err := Verify(&p); err == nil {
		t.Error("Verify accepted corrupted IP header")
	}
}

func TestBuiltinSchemasValid(t *testing.T) {
	cat := schema.NewCatalog()
	if err := RegisterBuiltins(cat); err != nil {
		t.Fatalf("RegisterBuiltins: %v", err)
	}
	for _, name := range []string{"ETH", "IPV4", "TCP", "UDP"} {
		s, ok := cat.Lookup(name)
		if !ok {
			t.Fatalf("%s missing", name)
		}
		// Every column's interp function must exist and agree on type.
		for _, c := range s.Cols {
			f, ok := LookupInterp(c.Interp)
			if !ok {
				t.Errorf("%s.%s: interp %s unregistered", name, c.Name, c.Interp)
				continue
			}
			if f.Type != c.Type {
				t.Errorf("%s.%s: schema type %s, interp type %s", name, c.Name, c.Type, f.Type)
			}
		}
	}
	tcp, ok := cat.Lookup("TCP")
	if !ok {
		t.Fatal("TCP not in catalog")
	}
	if i, _ := tcp.Col("destPort"); i < 0 {
		t.Error("TCP.destPort missing")
	}
	if ord := tcp.Cols[0].Ordering; !ord.Increasing() {
		t.Errorf("TCP.time ordering = %s", ord)
	}
}

func TestBuildRoundTripProperty(t *testing.T) {
	f := func(src, dst uint32, sp, dp uint16, n uint8) bool {
		payload := bytes.Repeat([]byte{0xab}, int(n))
		p := BuildTCP(1, TCPSpec{SrcIP: src, DstIP: dst, SrcPort: sp, DstPort: dp, Payload: payload})
		if Verify(&p) != nil {
			return false
		}
		gs, _ := LookupInterp("get_src_ip")
		gd, _ := LookupInterp("get_dest_port")
		vs, ok1 := gs.Extract(&p)
		vd, ok2 := gd.Extract(&p)
		pay, ok3 := p.Payload()
		return ok1 && ok2 && ok3 &&
			vs.IP() == src && vd.Uint() == uint64(dp) && bytes.Equal(pay, payload)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
