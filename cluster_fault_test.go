package gigascope

import (
	"fmt"
	"runtime"
	"strings"
	"testing"
	"time"

	"gigascope/internal/rts"
)

// Wire-fault x placement tests: the coordinator's distributed deployments
// under seeded transport faults (connection kills, torn frames, skewed
// heartbeat clocks, permanent partition death). Every test is watchdogged
// — a deadlocked shutdown fails loudly with stacks — and leak-checked:
// fault recovery must not strand readers, dialers, or backoff sleepers.

// watchdogTest panics with full stacks if the test overruns d.
func watchdogTest(t *testing.T, d time.Duration) (cancel func()) {
	done := make(chan struct{})
	go func() {
		select {
		case <-done:
		case <-time.After(d):
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			panic(fmt.Sprintf("watchdog: %s still running after %v:\n%s", t.Name(), d, buf[:n]))
		}
	}()
	return func() { close(done) }
}

// leakCheckTest fails the test if the goroutine count has not returned
// to its baseline shortly after the test body finishes.
func leakCheckTest(t *testing.T) func() {
	base := runtime.NumGoroutine()
	return func() {
		deadline := time.Now().Add(5 * time.Second)
		for time.Now().Before(deadline) {
			if runtime.NumGoroutine() <= base {
				return
			}
			time.Sleep(10 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		n := runtime.Stack(buf, true)
		t.Fatalf("goroutine leak: %d now vs %d at start\n%s", runtime.NumGoroutine(), base, buf[:n])
	}
}

// singleProcessRows runs clusterScript in one System over the same seeded
// traffic the cluster tests use, keeping only packets whose global
// per-interface index passes filter (nil keeps all), and returns each
// query's sorted rows. The filter uses the same global index the
// cluster's Router uses, so "partition 1 only" means exactly the packets
// capB would have captured.
func singleProcessRows(t *testing.T, filter func(idx uint64) bool) map[string][]string {
	t.Helper()
	sys, err := New()
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.AddScript(clusterScript); err != nil {
		t.Fatal(err)
	}
	subs := map[string]*Subscription{}
	for _, q := range []string{"feed", "counts"} {
		sub, err := sys.Subscribe(q, 8192)
		if err != nil {
			t.Fatal(err)
		}
		subs[q] = sub
	}
	if err := sys.Start(); err != nil {
		t.Fatal(err)
	}
	var idx uint64
	driveClusterTraffic(t, func(iface string, ps []*Packet) {
		kept := make([]*Packet, 0, len(ps))
		for _, p := range ps {
			if filter == nil || filter(idx) {
				kept = append(kept, p)
			}
			idx++
		}
		sys.InjectBatch(iface, kept)
	}, sys.AdvanceClock)
	sys.Stop()
	out := map[string][]string{}
	for q, sub := range subs {
		out[q] = sortedRows(collectRows(t, sub))
	}
	return out
}

// driveClusterTrafficPaced is driveClusterTraffic with a wall-clock sleep
// per poll window, so reconnect backoff cycles can complete mid-stream.
func driveClusterTrafficPaced(t *testing.T, inject func(string, []*Packet), advance func(uint64), pace time.Duration) {
	t.Helper()
	gen, err := NewTrafficGenerator(TrafficConfig{
		Seed: 42,
		Classes: []TrafficClass{
			{Name: "web", RateMbps: 20, PktBytes: 1000, DstPort: 80, Proto: ProtoTCP},
			{Name: "tls", RateMbps: 10, PktBytes: 800, DstPort: 443, Proto: ProtoTCP},
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	const horizon = 2_000_000
	const step = horizon / 40
	for usec := uint64(step); usec <= horizon; usec += step {
		var window []*Packet
		gen.Until(usec, func(p *Packet) { window = append(window, p) })
		inject("eth0", window)
		advance(usec)
		time.Sleep(pace)
	}
}

// aggImportStats returns the sink host's import-node stats whose node
// name contains substr (the wire-facing nodes carry partition suffixes).
func aggImportStats(c *Cluster, substr string) []rts.NodeStats {
	var out []rts.NodeStats
	for _, ns := range c.Stats()[c.Manifest().Sink] {
		if strings.Contains(ns.Name, substr) {
			out = append(out, ns)
		}
	}
	return out
}

// TestClusterWireKillAndTruncateGapAccounting kills capA's export
// connection at one seeded write and tears one of capB's frames in half,
// then checks the full recovery chain on a placed 3-host cluster: both
// imports reconnect on their own, every reconnect surfaces as a SYSMON
// gap event, the quantified gap tuples exactly account for any rows the
// sink is missing relative to the single-process run, and no row is ever
// duplicated or corrupted.
func TestClusterWireKillAndTruncateGapAccounting(t *testing.T) {
	defer watchdogTest(t, 120*time.Second)()
	defer leakCheckTest(t)()
	want := singleProcessRows(t, nil)

	topo, err := ParseTopology(clusterTrioTopo)
	if err != nil {
		t.Fatal(err)
	}
	// Write 0 on each server is the subscriber's schema frame; the faults
	// land mid-stream, after the handshake, exactly once each.
	wfA := NewWireFaults(ConnFaultConfig{Seed: 9, KillAt: []uint64{3}})
	wfB := NewWireFaults(ConnFaultConfig{Seed: 11, TruncateAt: []uint64{4}})
	c, err := NewCluster(ClusterConfig{
		Topology:     topo,
		Script:       clusterScript,
		Seed:         7,
		BackoffMin:   2 * time.Millisecond,
		BackoffMax:   20 * time.Millisecond,
		ServerFaults: map[string]*WireFaults{"capA": wfA, "capB": wfB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedSub, err := c.Subscribe("feed", 8192)
	if err != nil {
		t.Fatal(err)
	}
	driveClusterTrafficPaced(t, c.InjectBatch, c.AdvanceClock, 2*time.Millisecond)

	// Both clients must recover without intervention.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		n := 0
		for _, st := range aggImportStats(c, "#part") {
			if st.Reconnects >= 1 {
				n++
			}
		}
		if n >= 2 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}

	var gapTuples uint64
	for _, st := range aggImportStats(c, "#part") {
		if st.Reconnects < 1 {
			t.Errorf("import %s never reconnected", st.Name)
		}
		if st.GapEvents < 1 {
			t.Errorf("import %s reconnected with no gap event", st.Name)
		}
		gapTuples += st.GapTuples
	}
	c.Stop()
	got := sortedRows(collectRows(t, feedSub))

	if fs := wfA.Stats(); fs.Kills != 1 {
		t.Errorf("capA injector delivered %d kills, want 1", fs.Kills)
	}
	if fs := wfB.Stats(); fs.Truncates != 1 {
		t.Errorf("capB injector delivered %d truncates, want 1", fs.Truncates)
	}

	// No duplication, no corruption: every received row is a reference
	// row, each at most as often as the reference has it.
	missing, extra := diffSortedStrings(want["feed"], got)
	if len(extra) != 0 {
		t.Fatalf("cluster produced %d rows the single-process run never did; first: %s", len(extra), extra[0])
	}
	// Exact accounting: the quantified gap covers exactly what's missing
	// (the exporter incarnation survived both faults, so the loss is
	// quantifiable, not estimated).
	if uint64(len(missing)) != gapTuples {
		t.Fatalf("sink missing %d feed rows but SYSMON accounts %d gap tuples", len(missing), gapTuples)
	}
}

// diffSortedStrings returns elements only in a (missing) and only in b
// (extra); both inputs must be sorted.
func diffSortedStrings(a, b []string) (missing, extra []string) {
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			i++
			j++
		case a[i] < b[j]:
			missing = append(missing, a[i])
			i++
		default:
			extra = append(extra, b[j])
			j++
		}
	}
	missing = append(missing, a[i:]...)
	extra = append(extra, b[j:]...)
	return missing, extra
}

// TestClusterDegradeDropPartitionSurvivingPartition kills one capture
// host's exports permanently before any traffic flows. Under
// DegradeDropPartition the sink declares the peer dead after DeadAfter
// failed dials, closes the local partition stream, and the reunify keeps
// going: the cluster's output must be byte-identical to a single-process
// run fed only the surviving partition's packets.
func TestClusterDegradeDropPartitionSurvivingPartition(t *testing.T) {
	defer watchdogTest(t, 120*time.Second)()
	defer leakCheckTest(t)()
	// Reference: only the packets capB would capture (odd global index).
	want := singleProcessRows(t, func(idx uint64) bool { return idx%2 == 1 })

	topo, err := ParseTopology(clusterTrioTopo)
	if err != nil {
		t.Fatal(err)
	}
	c, err := NewCluster(ClusterConfig{
		Topology:   topo,
		Script:     clusterScript,
		Seed:       7,
		Degrade:    DegradeDropPartition,
		DeadAfter:  2,
		BackoffMin: 2 * time.Millisecond,
		BackoffMax: 10 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedSub, err := c.Subscribe("feed", 8192)
	if err != nil {
		t.Fatal(err)
	}
	countsSub, err := c.Subscribe("counts", 8192)
	if err != nil {
		t.Fatal(err)
	}

	// Take capA's exports down for good: its subscriber connections drop
	// and every redial is refused.
	c.Session("capA").Server().Close()

	// Wait until the sink has declared the partition dead and dropped it.
	deadline := time.Now().Add(10 * time.Second)
	dead := false
	for !dead && time.Now().Before(deadline) {
		for _, st := range aggImportStats(c, "#part0") {
			if st.PeerState == "dead" {
				dead = true
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !dead {
		t.Fatal("sink never declared the killed partition dead")
	}

	driveClusterTraffic(t, c.InjectBatch, c.AdvanceClock)
	c.Stop()

	gotFeed := sortedRows(collectRows(t, feedSub))
	gotCounts := sortedRows(collectRows(t, countsSub))
	diff := func(name string, want, got []string) {
		missing, extra := diffSortedStrings(want, got)
		if len(missing) != 0 || len(extra) != 0 {
			t.Fatalf("%s: surviving partition diverges from partition-B-only reference: %d missing, %d extra (of %d)",
				name, len(missing), len(extra), len(want))
		}
	}
	diff("feed", want["feed"], gotFeed)
	diff("counts", want["counts"], gotCounts)

	// The death is accounted: one gap punctuation, no reconnect (the
	// exporter never came back).
	for _, st := range aggImportStats(c, "#part0") {
		if st.GapEvents < 1 {
			t.Errorf("dead partition %s recorded no gap event", st.Name)
		}
		if st.Reconnects != 0 {
			t.Errorf("dead partition %s claims %d reconnects against a closed listener", st.Name, st.Reconnects)
		}
	}
}

// TestClusterClockSkewKeepsSelectionMultiset runs the capture hosts'
// exports through seeded heartbeat clock skew. Skewed clocks may shift
// flush boundaries downstream, but they must not corrupt data: the
// selection query's row multiset stays byte-identical to the
// single-process run, the aggregate keeps producing, and nothing
// deadlocks or leaks. (Aggregate rows are deliberately not byte-compared:
// a forward-skewed clock can legitimately split a group across two
// flushes.)
func TestClusterClockSkewKeepsSelectionMultiset(t *testing.T) {
	defer watchdogTest(t, 120*time.Second)()
	defer leakCheckTest(t)()
	want := singleProcessRows(t, nil)

	topo, err := ParseTopology(clusterTrioTopo)
	if err != nil {
		t.Fatal(err)
	}
	wfA := NewWireFaults(ConnFaultConfig{Seed: 3, SkewUsec: 100_000, SkewRate: 1.0})
	wfB := NewWireFaults(ConnFaultConfig{Seed: 4, SkewUsec: 100_000, SkewRate: 1.0})
	c, err := NewCluster(ClusterConfig{
		Topology:      topo,
		Script:        clusterScript,
		Seed:          7,
		WireHeartbeat: 2 * time.Millisecond,
		ServerFaults:  map[string]*WireFaults{"capA": wfA, "capB": wfB},
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Start(); err != nil {
		t.Fatal(err)
	}
	feedSub, err := c.Subscribe("feed", 8192)
	if err != nil {
		t.Fatal(err)
	}
	countsSub, err := c.Subscribe("counts", 8192)
	if err != nil {
		t.Fatal(err)
	}
	driveClusterTraffic(t, c.InjectBatch, c.AdvanceClock)
	// Keepalives ride a wall-clock ticker; hold the cluster open until
	// the skew hook has demonstrably fired on both capture hosts.
	deadline := time.Now().Add(10 * time.Second)
	for (wfA.Stats().Skews == 0 || wfB.Stats().Skews == 0) && time.Now().Before(deadline) {
		time.Sleep(2 * time.Millisecond)
	}
	c.Stop()

	if wfA.Stats().Skews == 0 || wfB.Stats().Skews == 0 {
		t.Fatal("no clock skew was actually delivered")
	}
	gotFeed := sortedRows(collectRows(t, feedSub))
	missing, extra := diffSortedStrings(want["feed"], gotFeed)
	if len(missing) != 0 || len(extra) != 0 {
		t.Fatalf("feed multiset diverged under clock skew: %d missing, %d extra (of %d)",
			len(missing), len(extra), len(want["feed"]))
	}
	if rows := collectRows(t, countsSub); len(rows) == 0 {
		t.Fatal("aggregate produced no rows under clock skew")
	}
}
