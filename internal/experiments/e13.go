package experiments

import (
	"fmt"
	"io"
	"time"

	"gigascope/internal/pkt"
	"gigascope/internal/rts"
)

// E13: columnar capture path A/B. PR 8 rebuilt the capture hot path
// around struct-of-arrays batches (selection and aggregation kernels
// over primitive column slices, a selection vector carrying filter
// results) and replaced the two hottest channel hops with lock-free SPSC
// rings. This experiment measures what that bought, on two workloads:
//
//   - capture: a selective filter plus a split GROUP BY directly over one
//     interface, so nearly all work happens in the capture-level operators
//     the PR rewrote. This isolates the columnar path's own speedup.
//   - e5 mix: the full seven-query E5 deployment over two links. The HFTA
//     side (merge, super-aggregates) is untouched by the columnar path and
//     dominates this mix, so the end-to-end ratio is an Amdahl view.
//
// Each workload runs row-at-a-time (DisableColumnar) vs columnar on the
// unsharded and 2-shard capture configurations. The differential harness
// pins the two paths byte-identical; this records the throughput ratio.

// e13CaptureQueries keeps all the work at the LFTA: a selective per-port
// filter and a per-minute rate that compiles to a capture-level split
// aggregate (direct-mapped LFTA table + HFTA super-aggregate over the
// tiny partial-sum stream).
var e13CaptureQueries = []string{
	`DEFINE { query_name e13_web; }
	 SELECT time, srcIP, destIP, total_length FROM eth0.TCP
	 WHERE protocol = 6 and destPort = 80`,
	`DEFINE { query_name e13_rate; }
	 SELECT tb, destPort, count(*) as pkts, sum(total_length) as bytes
	 FROM eth0.TCP GROUP BY time/60 as tb, destPort`,
}

// E13Row is the outcome of one A/B pair.
type E13Row struct {
	Workload string
	Packets  uint64
	Shards   int // 0 = unsharded inline capture path
	RowPPS   float64
	ColPPS   float64
	Speedup  float64 // ColPPS / RowPPS
}

// e13Run deploys queries, drains the sink streams, and pushes the
// pregenerated trace(s) through the runtime under cfg, returning
// wall-clock throughput in packets per second. p1 may be nil for the
// single-interface workload. Traces are generated once by E13 and shared
// across cells: regenerating ~10^5 packets per cell would dominate the
// process's CPU budget and (on throttled hosts) starve the timed region
// unevenly between cells.
func e13Run(queries, sinks []string, p0, p1 []pkt.Packet, cfg rts.Config) (float64, error) {
	cat, err := newCatalog()
	if err != nil {
		return 0, err
	}
	mgr := rts.NewManager(cat, cfg)
	for _, q := range queries {
		cq, err := compileQuery(cat, q, nil)
		if err != nil {
			return 0, err
		}
		if err := mgr.AddQuery(cq, nil); err != nil {
			return 0, err
		}
	}
	var subs []*rts.Subscription
	for _, name := range sinks {
		sub, err := mgr.Subscribe(name, 8192)
		if err != nil {
			return 0, err
		}
		subs = append(subs, sub)
	}
	done := make(chan uint64, len(subs))
	for _, sub := range subs {
		go func(s *rts.Subscription) {
			var n uint64
			for b := range s.C {
				n += uint64(b.Tuples())
			}
			done <- n
		}(sub)
	}
	if err := mgr.Start(); err != nil {
		return 0, err
	}

	const pollWindow = 256
	w0 := make([]*pkt.Packet, 0, pollWindow)
	w1 := make([]*pkt.Packet, 0, pollWindow)

	// Time through Stop: on a sharded interface InjectBatch is
	// asynchronous (it returns once the window is on the shard rings), so
	// inject-side timing alone would measure enqueue rate, not
	// processing. Including the drain makes the row/columnar comparison
	// end-to-end on both capture configurations.
	total := len(p0) + len(p1)
	start := time.Now()
	for i := 0; i < len(p0); i++ {
		w0 = append(w0, &p0[i])
		if i < len(p1) {
			w1 = append(w1, &p1[i])
		}
		if len(w0) == pollWindow || i == len(p0)-1 {
			mgr.InjectBatch("eth0", w0)
			w0 = w0[:0]
			if len(w1) > 0 {
				mgr.InjectBatch("eth1", w1)
				w1 = w1[:0]
			}
		}
	}
	mgr.Stop()
	elapsed := time.Since(start).Seconds()
	var results uint64
	for range subs {
		results += <-done
	}
	if results == 0 {
		return 0, fmt.Errorf("experiments: E13 produced no results")
	}
	return float64(total) / elapsed, nil
}

// e13Best runs a cell several times and keeps the best throughput. Each
// measurement is end-to-end and deterministic in its work; run-to-run
// variance is host interference (scheduler, CPU-quota throttling), which
// only ever slows a run down — so max, not mean, estimates the cell's
// uncontended rate, and the same convention applied to both sides keeps
// the ratio fair.
func e13Best(queries, sinks []string, p0, p1 []pkt.Packet, cfg rts.Config, reps int) (float64, error) {
	var best float64
	for i := 0; i < reps; i++ {
		pps, err := e13Run(queries, sinks, p0, p1, cfg)
		if err != nil {
			return 0, err
		}
		if pps > best {
			best = pps
		}
	}
	return best, nil
}

// E13 runs the row/columnar pair for both workloads on the unsharded and
// 2-shard capture paths: best-of-3 per cell over shared pregenerated
// traces. The row-path cell runs first so both cells see equally warm
// caches for the shared compile/codegen machinery.
func E13(packets int) ([]E13Row, error) {
	g0, err := e5Generator(31)
	if err != nil {
		return nil, err
	}
	g1, err := e5Generator(32)
	if err != nil {
		return nil, err
	}
	half := packets / 2
	p0 := make([]pkt.Packet, half)
	p1 := make([]pkt.Packet, half)
	for i := 0; i < half; i++ {
		p0[i], _ = g0.Next()
		p1[i], _ = g1.Next()
	}
	workloads := []struct {
		name    string
		queries []string
		sinks   []string
		p0, p1  []pkt.Packet
	}{
		{"capture", e13CaptureQueries, []string{"e13_web", "e13_rate"}, p0, nil},
		{"e5 mix", E5Queries, []string{"e5_port_rate", "e5_talkers", "e5_web_rate"}, p0, p1},
	}
	const reps = 3
	var out []E13Row
	for _, wl := range workloads {
		for _, shards := range []int{0, 2} {
			rowCfg := rts.Config{RingSize: 8192, Shards: shards, DisableColumnar: true}
			colCfg := rts.Config{RingSize: 8192, Shards: shards}
			row, err := e13Best(wl.queries, wl.sinks, wl.p0, wl.p1, rowCfg, reps)
			if err != nil {
				return nil, err
			}
			col, err := e13Best(wl.queries, wl.sinks, wl.p0, wl.p1, colCfg, reps)
			if err != nil {
				return nil, err
			}
			out = append(out, E13Row{
				Workload: wl.name,
				Packets:  uint64(len(wl.p0) + len(wl.p1)),
				Shards:   shards,
				RowPPS:   row,
				ColPPS:   col,
				Speedup:  col / row,
			})
		}
	}
	return out, nil
}

// PrintE13 renders the result.
func PrintE13(w io.Writer, rows []E13Row) {
	fmt.Fprintln(w, "E13: columnar capture path vs row-at-a-time, full RTS (best of 3)")
	fmt.Fprintf(w, "  %-10s %-10s %14s %14s %9s\n", "workload", "config", "row pkts/s", "col pkts/s", "speedup")
	for _, r := range rows {
		cfg := "unsharded"
		if r.Shards > 0 {
			cfg = fmt.Sprintf("%d shards", r.Shards)
		}
		fmt.Fprintf(w, "  %-10s %-10s %14.0f %14.0f %8.2fx\n", r.Workload, cfg, r.RowPPS, r.ColPPS, r.Speedup)
	}
}
